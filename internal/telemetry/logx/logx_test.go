package logx

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
}

// TestGoldenLine pins the logfmt rendering: timestamp, level, quoted
// message, bound fields, then per-call fields in order.
func TestGoldenLine(t *testing.T) {
	var b strings.Builder
	log := New(&b, LevelDebug).WithClock(fixedClock)
	log = log.With(F("shard", "2/4"), F("tenant", "acme"))
	log.Info("lease granted", F("cells", 16), F("err", errors.New("boom boom")))

	want := `ts=2026-01-02T03:04:05Z level=info msg="lease granted" shard=2/4 tenant=acme cells=16 err="boom boom"` + "\n"
	if got := b.String(); got != want {
		t.Errorf("line mismatch:\ngot:  %q\nwant: %q", got, want)
	}
}

// TestLevelThreshold pins that lines below the threshold are dropped
// and lines at or above it pass.
func TestLevelThreshold(t *testing.T) {
	var b strings.Builder
	log := New(&b, LevelWarn).WithClock(fixedClock)
	log.Debug("d")
	log.Info("i")
	log.Warn("w")
	log.Error("e")
	lines := strings.Count(b.String(), "\n")
	if lines != 2 {
		t.Errorf("wrote %d lines, want 2 (warn+error):\n%s", lines, b.String())
	}
	if strings.Contains(b.String(), "level=info") {
		t.Error("info line leaked through a warn threshold")
	}
}

// TestNilLoggerIsSilent pins the nil-receiver contract that lets
// library code log unconditionally.
func TestNilLoggerIsSilent(t *testing.T) {
	var log *Logger
	log.Info("nothing", F("k", "v"))
	log = log.With(F("a", 1)).WithClock(fixedClock)
	log.Error("still nothing")
	if log.Enabled(LevelError) {
		t.Error("nil logger reports Enabled")
	}
}

// TestParseLevel covers the -log-level flag surface.
func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, " info ": LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

// TestConcurrentLinesDoNotInterleave pins the one-mutex-per-writer
// contract: under -race this is also the data-race check.
func TestConcurrentLinesDoNotInterleave(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	log := New(w, LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				log.Info("tick", F("worker", "w"), F("j", j))
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("interleaved or malformed line: %q", line)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
