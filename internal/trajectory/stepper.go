// Package trajectory implements the trajectory algebra of §3.1 of the
// paper: the basic exploration trajectory R(k, v) and the derived
// trajectories X, Q, Y', Y, Z, A', A, B, K and Ω (Definitions 3.1-3.8),
// together with their exact lengths.
//
// Trajectories are represented as lazy Steppers: deterministic programs
// that emit one exit port per move, reacting only to the local
// observations the model grants an agent (current degree and entry port).
// Laziness matters because the outer trajectories are astronomically long
// — |Ω(k)| grows like the 11th power of k even for linear-length
// exploration sequences (DESIGN.md §2.4) — while executions only ever
// touch a prefix. Exact lengths are therefore computed symbolically with
// math/big by Lengths, never by materialization.
package trajectory

import (
	"math/big"

	"meetpoly/internal/graph"
)

// Stepper emits the moves of a trajectory one at a time.
//
// The caller must pass, on each call, the degree of the agent's current
// node and the port by which the stepper's previous move entered it. On
// the first call — and, inside composite steppers, whenever a fresh
// sub-trajectory starts — the entry port is 0 by convention, mirroring
// the paper's application of an exploration sequence "from scratch".
//
// Next returns ok == false when the trajectory is complete; port is then
// meaningless. A Stepper is single-use: create a fresh one per execution.
type Stepper interface {
	Next(deg, entry int) (port int, ok bool)
}

// uxsStepper follows an exploration sequence: exit = (entry + x_i) mod deg.
// This realizes R(k, v) when given the catalog's Seq(k).
type uxsStepper struct {
	seq []int
	i   int
}

// NewUXS returns a stepper following the given offset sequence.
func NewUXS(seq []int) Stepper { return &uxsStepper{seq: seq} }

func (u *uxsStepper) Next(deg, entry int) (int, bool) {
	if u.i >= len(u.seq) {
		return 0, false
	}
	x := u.seq[u.i]
	u.i++
	return (entry + x) % deg, true
}

// mirror runs its inner stepper to completion and then backtracks along
// the reverse path: the realization of the T T̄ pattern used by X, Y and A.
// The reverse of a move that exited by q and entered by p is a move that
// exits by p and enters by q, so backtracking replays recorded entry
// ports in reverse order.
type mirror struct {
	fwd Stepper
	rec [][2]int32 // (exit, entry) per completed forward move

	pendingExit int32
	havePending bool
	replaying   bool
	replayIdx   int
}

// Mirror returns a stepper that follows s and then retraces it backwards,
// ending at the start node after exactly twice as many moves as s makes.
func Mirror(s Stepper) Stepper { return &mirror{fwd: s} }

func (m *mirror) Next(deg, entry int) (int, bool) {
	if m.replaying {
		if m.replayIdx < 0 {
			return 0, false
		}
		p := int(m.rec[m.replayIdx][1])
		m.replayIdx--
		return p, true
	}
	if m.havePending {
		m.rec = append(m.rec, [2]int32{m.pendingExit, int32(entry)})
		m.havePending = false
	}
	port, ok := m.fwd.Next(deg, entry)
	if ok {
		m.pendingExit = int32(port)
		m.havePending = true
		return port, true
	}
	// Forward finished: begin replay with the most recent move's entry.
	m.replaying = true
	m.replayIdx = len(m.rec) - 1
	if m.replayIdx < 0 {
		return 0, false
	}
	p := int(m.rec[m.replayIdx][1])
	m.replayIdx--
	return p, true
}

// chain concatenates sub-steppers produced on demand by gen (nil ends the
// chain). Each sub-stepper starts with the fresh-start entry convention.
type chain struct {
	gen func(i int) Stepper
	idx int
	cur Stepper

	started  bool // cur has made at least one move
	curMoved bool // the previous move of the chain was made by cur
}

// Chain returns the lazy concatenation of gen(0), gen(1), ... until gen
// returns nil. Sub-steppers are only instantiated when reached.
func Chain(gen func(i int) Stepper) Stepper { return &chain{gen: gen} }

// Concat returns the concatenation of the given steppers.
func Concat(subs ...Stepper) Stepper {
	return Chain(func(i int) Stepper {
		if i >= len(subs) {
			return nil
		}
		return subs[i]
	})
}

func (c *chain) Next(deg, entry int) (int, bool) {
	for {
		if c.cur == nil {
			c.cur = c.gen(c.idx)
			c.idx++
			if c.cur == nil {
				return 0, false
			}
			c.curMoved = false
		}
		e := entry
		if !c.curMoved {
			e = 0 // fresh start for a new sub-trajectory
		}
		port, ok := c.cur.Next(deg, e)
		if ok {
			c.curMoved = true
			return port, true
		}
		c.cur = nil
		// The sub made no further move; the next sub starts fresh, so the
		// original entry value is irrelevant from here on.
		entry = 0
	}
}

// repeat runs count fresh instances of the stepper produced by mk.
// count may be astronomically large (big.Int); instances are created
// lazily, so only executions that actually reach a repetition pay for it.
type repeat struct {
	mk    func() Stepper
	left  *big.Int
	cur   Stepper
	moved bool
}

// Repeat returns a stepper that follows mk() count times in sequence.
// count must be non-negative; it is copied.
func Repeat(mk func() Stepper, count *big.Int) Stepper {
	if count.Sign() < 0 {
		panic("trajectory: Repeat needs count >= 0")
	}
	return &repeat{mk: mk, left: new(big.Int).Set(count)}
}

var bigOne = big.NewInt(1)

func (r *repeat) Next(deg, entry int) (int, bool) {
	for {
		if r.cur == nil {
			if r.left.Sign() <= 0 {
				return 0, false
			}
			r.left.Sub(r.left, bigOne)
			r.cur = r.mk()
			r.moved = false
		}
		e := entry
		if !r.moved {
			e = 0
		}
		port, ok := r.cur.Next(deg, e)
		if ok {
			r.moved = true
			return port, true
		}
		r.cur = nil
		entry = 0
	}
}

// interleave follows the trunk trajectory R(k, v1) = (v1 ... vs) but
// inserts ins() at every trunk node before moving on, and once more at the
// final node: ins(v1) step ins(v2) step ... step ins(vs). This is the
// common shape of Y'(k, v) (insertions Q(k, vi), Definition 3.3) and
// A'(k, v) (insertions Z(k, vi), Definition 3.5).
//
// The trunk's exploration-sequence state uses the trunk's own entry ports,
// unaffected by the excursions, so the trunk realizes exactly R(k, v1).
type interleave struct {
	trunk Stepper
	ins   func() Stepper

	cur        Stepper // active insertion, nil when exhausted
	curMoved   bool
	trunkEntry int  // entry context for the next trunk step
	trunkPrev  bool // previous move was a trunk step
	trunkDone  bool
}

// Interleave returns the trunk-with-insertions composite described above.
func Interleave(trunk Stepper, ins func() Stepper) Stepper {
	return &interleave{trunk: trunk, ins: ins, cur: ins()}
}

func (iv *interleave) Next(deg, entry int) (int, bool) {
	if iv.trunkPrev {
		// The previous move belonged to the trunk; its arrival port is the
		// trunk's entry context, and a new insertion begins here.
		iv.trunkEntry = entry
		iv.trunkPrev = false
		iv.cur = iv.ins()
		iv.curMoved = false
	}
	if iv.cur != nil {
		e := entry
		if !iv.curMoved {
			e = 0
		}
		if port, ok := iv.cur.Next(deg, e); ok {
			iv.curMoved = true
			return port, true
		}
		iv.cur = nil
	}
	if iv.trunkDone {
		return 0, false
	}
	port, ok := iv.trunk.Next(deg, iv.trunkEntry)
	if !ok {
		iv.trunkDone = true
		return 0, false
	}
	iv.trunkPrev = true
	return port, true
}

// Trace records an executed trajectory prefix for analysis.
type Trace struct {
	Start   int
	Nodes   []int // node after each move
	Exits   []int // exit port of each move
	Entries []int // entry port of each move at its destination
}

// Moves returns the number of edge traversals in the trace.
func (t *Trace) Moves() int { return len(t.Nodes) }

// At returns the node occupied after m moves (At(0) == Start).
func (t *Trace) At(m int) int {
	if m == 0 {
		return t.Start
	}
	return t.Nodes[m-1]
}

// CoversAllEdges reports whether the trace traverses every edge of g.
func (t *Trace) CoversAllEdges(g *graph.Graph) bool {
	covered := make(map[[2]int]bool, g.M())
	cur := t.Start
	for i, p := range t.Exits {
		covered[g.EdgeID(cur, p)] = true
		cur = t.Nodes[i]
	}
	return len(covered) == g.M()
}

// Run executes s in g from start for at most limit moves. completed is
// true when the stepper signalled the end of its trajectory within the
// limit. A start node of degree 0 yields an empty trace.
func Run(g *graph.Graph, start int, s Stepper, limit int) (trace *Trace, completed bool) {
	t := &Trace{Start: start}
	cur, entry := start, 0
	for len(t.Nodes) < limit {
		d := g.Degree(cur)
		if d == 0 {
			return t, false
		}
		port, ok := s.Next(d, entry)
		if !ok {
			return t, true
		}
		if port < 0 || port >= d {
			panic("trajectory: stepper emitted out-of-range port")
		}
		to, in := g.Succ(cur, port)
		t.Exits = append(t.Exits, port)
		t.Entries = append(t.Entries, in)
		t.Nodes = append(t.Nodes, to)
		cur, entry = to, in
	}
	return t, false
}
