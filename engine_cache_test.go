package meetpoly

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"meetpoly/internal/graph"
)

// cacheTestSpec is a small all-kinds campaign: every scenario kind,
// two graph families, all three headline adversaries.
func cacheTestSpec() SweepSpec {
	return SweepSpec{
		Name: "cache-test",
		Seed: "cache-v1",
		Graphs: []SweepGraphAxis{
			{Kind: "path", Sizes: []int{4}},
			{Kind: "ring", Sizes: []int{4, 5}},
		},
		StartPairs:  2,
		Adversaries: []string{"", "avoider", "random"},
		Budget:      30_000,
		Moves:       60,
	}
}

// TestPreparedCacheHitRatio asserts the content-addressed cache's core
// economy: a sweep misses once per unique GraphSpec and hits everywhere
// else, and a repeated sweep adds no new misses.
func TestPreparedCacheHitRatio(t *testing.T) {
	eng := NewEngine()
	spec := cacheTestSpec()
	cells, err := CountSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("oracle failures:\n%s", rep.Table())
	}
	st := eng.CacheStats()
	const uniqueGraphs = 3 // path-4, ring-4, ring-5
	if st.Misses != uniqueGraphs {
		t.Errorf("first sweep: %d cache misses, want %d (one per unique graph)", st.Misses, uniqueGraphs)
	}
	// Every cell preparation beyond the graph pre-pass is a hit.
	if st.Hits < int64(cells)-uniqueGraphs {
		t.Errorf("first sweep: %d cache hits for %d cells, want >= %d", st.Hits, cells, cells-uniqueGraphs)
	}
	if _, err := eng.Sweep(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	st2 := eng.CacheStats()
	if st2.Misses != st.Misses {
		t.Errorf("second sweep added misses: %d -> %d (cache not content-addressed?)", st.Misses, st2.Misses)
	}
	if st2.Hits <= st.Hits {
		t.Errorf("second sweep added no hits: %d -> %d", st.Hits, st2.Hits)
	}
}

// TestPreparedCacheConcurrent hammers one engine from concurrent
// RunBatch and Sweep calls whose scenarios share GraphSpecs, under
// -race: the cache must serve one immutable graph per fingerprint with
// no torn builds, and all runs must agree with a reference execution.
func TestPreparedCacheConcurrent(t *testing.T) {
	eng := NewEngine()
	sc := Scenario{
		Kind:      ScenarioRendezvous,
		Graph:     GraphSpec{Kind: "ring", N: 5},
		Starts:    []int{0, 2},
		Labels:    []Label{2, 5},
		Adversary: "avoider",
		Budget:    5_000,
	}
	ref, refErr := eng.Run(context.Background(), sc)
	spec := cacheTestSpec()
	refRep, err := eng.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			brs := eng.RunBatch(context.Background(), []Scenario{sc, sc, sc})
			for _, br := range brs {
				if (br.Err == nil) != (refErr == nil) {
					errs <- br.Err
					continue
				}
				if br.Result != nil && ref != nil &&
					br.Result.Rendezvous.Summary.TotalCost != ref.Rendezvous.Summary.TotalCost {
					t.Errorf("concurrent run diverged: cost %d vs %d",
						br.Result.Rendezvous.Summary.TotalCost, ref.Rendezvous.Summary.TotalCost)
				}
			}
		}()
		go func() {
			defer wg.Done()
			rep, err := eng.Sweep(context.Background(), spec)
			if err != nil {
				errs <- err
				return
			}
			if got, want := mustJSON(t, rep), mustJSON(t, refRep); !bytes.Equal(got, want) {
				t.Errorf("concurrent sweep report diverged from reference")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("concurrent cache user failed: %v", err)
		}
	}
}

// TestShuffleSeedsNeverAlias is the cache mutation test: ShufflePorts
// specs differing only in seed are distinct fingerprints and must yield
// distinct port-numbered graphs — a cached shuffled graph may never be
// served for a different shuffle seed — while the same seed must keep
// serving the one immutable instance.
func TestShuffleSeedsNeverAlias(t *testing.T) {
	eng := NewEngine()
	build := func(seed int64) *Graph {
		sc := Scenario{
			Kind:   ScenarioESST,
			Graph:  GraphSpec{Kind: "clique", N: 5, Shuffle: true, Seed: seed},
			Starts: []int{0, 3},
			Budget: 200_000,
		}
		brs := eng.RunBatch(context.Background(), []Scenario{sc})
		if brs[0].Err != nil {
			t.Fatalf("seed %d: %v", seed, brs[0].Err)
		}
		return brs[0].Graph
	}
	g1, g2, g3 := build(1), build(2), build(1)
	if g1 != g3 {
		t.Error("same spec twice returned distinct graph instances (cache not shared)")
	}
	if g1 == g2 {
		t.Error("different shuffle seeds returned the same cached instance")
	}
	if graph.Equal(g1, g2) {
		t.Error("different shuffle seeds produced structurally identical graphs (aliased cache entry?)")
	}
	// The cached instance must be exactly what a fresh build produces.
	fresh, err := (GraphSpec{Kind: "clique", N: 5, Shuffle: true, Seed: 1}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(g1, fresh) {
		t.Error("cached graph diverges from a fresh deterministic build")
	}
}

// TestCachedUncachedSweepsIdentical is the differential acceptance
// test: the same campaign on a cache-on and a cache-off engine must
// produce byte-identical reports. The cache (graphs, coverage
// verdicts, route replays) is an amortization of preparation cost, not
// an approximation of execution.
func TestCachedUncachedSweepsIdentical(t *testing.T) {
	spec := cacheTestSpec()
	spec.Kinds = []string{"rendezvous", "baseline", "esst", "sgl", "certify"}
	spec.StartPairs = 1
	// A modest budget keeps the -race run fast; cells that exhaust it
	// (baseline's exponential walks under the avoider) are still valid
	// differential material — both engines must exhaust identically.
	spec.Budget = 40_000

	cached, err := NewEngine().Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := NewEngine(WithPreparedCache(false)).Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	jc, ju := mustJSON(t, cached), mustJSON(t, uncached)
	if !bytes.Equal(jc, ju) {
		t.Fatalf("cached and uncached sweep reports differ:\ncached:   %s\nuncached: %s", jc, ju)
	}
	if !cached.OK() {
		t.Fatalf("sweep failed oracles:\n%s", cached.Table())
	}
}

// TestReplayMatchesSweptCell replays a cell against the warm cache and
// checks the outcome byte-matches the cell as the streaming sweep ran
// it — the reproduction loop must not depend on cache temperature.
func TestReplayMatchesSweptCell(t *testing.T) {
	eng := NewEngine()
	spec := cacheTestSpec()
	cells, _, err := ExpandSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	brs := eng.RunBatch(context.Background(), sweepScenarios(cells))
	// Pick an avoider cell (budget-exhausted: the long adversarial path).
	for _, br := range brs {
		cell := cells[br.Index]
		if cell.Kind != "rendezvous" || cell.Adversary != "avoider" {
			continue
		}
		cr, err := eng.ReplayCell(context.Background(), spec, cell.Seed)
		if err != nil {
			t.Fatal(err)
		}
		want := sweepOutcome(cell, br)
		if got := cr.Outcome; got != want {
			t.Fatalf("replayed outcome %+v != swept outcome %+v", got, want)
		}
		return
	}
	t.Fatal("no avoider cell found in spec")
}

func sweepScenarios(cells []SweepCell) []Scenario {
	scs := make([]Scenario, len(cells))
	for i, c := range cells {
		scs[i] = CellScenario(c)
	}
	return scs
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
