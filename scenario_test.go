package meetpoly

import (
	"reflect"
	"testing"

	"meetpoly/internal/sched"
)

// TestScenarioJSONRoundTrip serializes scenarios of every kind and
// checks the parse restores them exactly.
func TestScenarioJSONRoundTrip(t *testing.T) {
	scs := []Scenario{
		{Name: "rv", Kind: ScenarioRendezvous,
			Graph:  GraphSpec{Kind: "ring", N: 5, Seed: 3, Shuffle: true},
			Starts: []int{0, 4}, Labels: []Label{2, 5},
			Adversary: "random:7", Budget: 1000},
		{Name: "base", Kind: ScenarioBaseline,
			Graph:  GraphSpec{Kind: "path", N: 2},
			Starts: []int{0, 1}, Labels: []Label{1, 2}, Budget: 10},
		{Name: "esst", Kind: ScenarioESST,
			Graph:  GraphSpec{Kind: "clique", N: 4},
			Starts: []int{0, 3}, Adversary: "biased:1,5", Budget: 500},
		{Name: "sgl", Kind: ScenarioSGL,
			Graph:  GraphSpec{Kind: "star", N: 5},
			Starts: []int{1, 2, 3}, Labels: []Label{4, 2, 7},
			Values: []string{"a", "b", "c"}, Adversary: "latewake:100", Budget: 99},
		{Name: "cert", Kind: ScenarioCertify,
			Graph:  GraphSpec{Kind: "random", N: 6, Seed: 9, P: 0.5},
			Starts: []int{0, 5}, Labels: []Label{3, 4}, Moves: 40},
	}
	for _, sc := range scs {
		data, err := sc.JSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", sc.Name, err)
		}
		back, err := ScenarioFromJSON(data)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", sc.Name, err, data)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", sc.Name, back, sc)
		}
	}
}

// TestScenarioFromJSONValidates ensures the parser rejects structurally
// valid JSON describing invalid scenarios.
func TestScenarioFromJSONValidates(t *testing.T) {
	if _, err := ScenarioFromJSON([]byte(`{"kind":"rendezvous","graph":{"kind":"path","n":4},"starts":[0,0],"labels":[1,2],"budget":10}`)); err == nil {
		t.Error("duplicate starts must fail")
	}
	if _, err := ScenarioFromJSON([]byte(`{not json`)); err == nil {
		t.Error("malformed JSON must fail")
	}
}

// TestParseAdversary maps every spec string onto its strategy type.
func TestParseAdversary(t *testing.T) {
	cases := map[string]any{
		"":             &sched.RoundRobin{},
		"roundrobin":   &sched.RoundRobin{},
		"round-robin":  &sched.RoundRobin{},
		"avoider":      &sched.Avoider{},
		"random":       &sched.Random{},
		"random:99":    &sched.Random{},
		"biased:1,5,9": &sched.Biased{},
		"latewake:10":  &sched.LateWake{},
		"late-wake:10": &sched.LateWake{},
	}
	for spec, want := range cases {
		adv, err := ParseAdversary(spec)
		if err != nil {
			t.Errorf("%q: %v", spec, err)
			continue
		}
		if reflect.TypeOf(adv) != reflect.TypeOf(want) {
			t.Errorf("%q: got %T, want %T", spec, adv, want)
		}
	}
	for _, bad := range []string{"chaos", "random:x", "biased:", "biased:1,x", "latewake:x"} {
		if _, err := ParseAdversary(bad); err == nil {
			t.Errorf("%q: expected an error", bad)
		}
	}
	// The biased weights must actually arrive.
	adv, err := ParseAdversary("biased:1,5,9")
	if err != nil {
		t.Fatal(err)
	}
	if b := adv.(*sched.Biased); !reflect.DeepEqual(b.Weights, []int{1, 5, 9}) {
		t.Errorf("weights = %v", b.Weights)
	}
}

// TestGraphSpecBuild pins the declarative builders to the generator
// package: identical parameters must produce structurally equal graphs,
// and bad specs must produce typed errors rather than panics.
func TestGraphSpecBuild(t *testing.T) {
	g1, err := GraphSpec{Kind: "ring", N: 5, Seed: 3, Shuffle: true}.Build()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GraphSpec{Kind: "ring", N: 5, Seed: 3, Shuffle: true}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g1.N() != 5 || g1.String() != g2.String() {
		t.Errorf("deterministic build violated: %v vs %v", g1, g2)
	}
	if _, err := (GraphSpec{Kind: "path", N: 1}).Build(); err == nil {
		t.Error("path of 1 node must fail (generator panic converted)")
	}
	if _, err := (GraphSpec{Kind: "nope"}).Build(); err == nil {
		t.Error("unknown kind must fail")
	}
}
