package meetpoly

// The benchmark harness: one bench per experiment of EXPERIMENTS.md
// (tables E1-E8, figures F1-F4) plus the ablations called out in
// DESIGN.md §8. Run with:
//
//	go test -bench=. -benchmem
//
// Measured quantities are reported via b.ReportMetric so the bench output
// doubles as a results table.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"meetpoly/internal/baseline"
	"meetpoly/internal/core"
	"meetpoly/internal/costmodel"
	"meetpoly/internal/esst"
	"meetpoly/internal/experiments"
	"meetpoly/internal/graph"
	"meetpoly/internal/sched"
	"meetpoly/internal/sgl"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

func benchEnv(b *testing.B) *trajectory.Env {
	b.Helper()
	return trajectory.NewEnv(uxs.NewVerified(uxs.DefaultFamily(6), 1))
}

// BenchmarkE1CostPiVsN regenerates table E1: Pi(n, 1) across n.
func BenchmarkE1CostPiVsN(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := costmodel.New(costmodel.PLinear(1))
			var bits int
			for i := 0; i < b.N; i++ {
				bits = m.Pi(n, 1).BitLen()
			}
			b.ReportMetric(float64(bits), "log2Pi")
		})
	}
}

// BenchmarkE2CostPiVsLabel regenerates table E2: Pi(4, m) across m.
func BenchmarkE2CostPiVsLabel(b *testing.B) {
	for _, m := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			model := costmodel.New(costmodel.PLinear(1))
			var bits int
			for i := 0; i < b.N; i++ {
				bits = model.Pi(4, m).BitLen()
			}
			b.ReportMetric(float64(bits), "log2Pi")
		})
	}
}

// BenchmarkE3BaselineCost regenerates table E3's baseline side: the
// exponential blow-up with label length.
func BenchmarkE3BaselineCost(b *testing.B) {
	model := costmodel.New(costmodel.PLinear(1))
	for _, l := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("len=%d", l), func(b *testing.B) {
			value := uint64(1)<<uint(l) - 1
			var bits int
			for i := 0; i < b.N; i++ {
				bits = model.BaselineCost(4, value).BitLen()
			}
			b.ReportMetric(float64(bits), "log2Cost")
		})
	}
}

// BenchmarkE4Rendezvous regenerates table E4: measured meeting cost per
// instance and adversary strategy.
func BenchmarkE4Rendezvous(b *testing.B) {
	env := benchEnv(b)
	instances := experiments.DefaultRVInstances()[:6]
	for _, in := range instances {
		for _, advName := range []string{"round-robin", "avoider", "random"} {
			b.Run(in.Name+"/"+advName, func(b *testing.B) {
				cost := 0
				for i := 0; i < b.N; i++ {
					adv := sched.Strategies(2)[advName]()
					res, err := core.Rendezvous(in.Graph, in.S1, in.S2, in.L1, in.L2,
						env, adv, 500_000)
					if err != nil {
						b.Fatal(err)
					}
					if res.Met {
						cost = res.Meeting.Cost
					}
				}
				b.ReportMetric(float64(cost), "meet-cost")
			})
		}
	}
}

// BenchmarkE4Baseline measures the exponential baseline on the same
// instances for the head-to-head of table E3/E4.
func BenchmarkE4Baseline(b *testing.B) {
	env := benchEnv(b)
	for _, in := range experiments.DefaultRVInstances()[:3] {
		b.Run(in.Name, func(b *testing.B) {
			cost := 0
			for i := 0; i < b.N; i++ {
				res, err := baseline.Rendezvous(in.Graph, in.S1, in.S2, in.L1, in.L2,
					env, &sched.RoundRobin{}, 500_000)
				if err != nil {
					b.Fatal(err)
				}
				if res.Met {
					cost = res.Meeting.Cost
				}
			}
			b.ReportMetric(float64(cost), "meet-cost")
		})
	}
}

// BenchmarkE5ESST regenerates table E5: exploration cost across graphs.
func BenchmarkE5ESST(b *testing.B) {
	cat := uxs.NewVerified(uxs.DefaultFamily(8), 1)
	for _, in := range experiments.DefaultESSTInstances() {
		if !cat.Covers(in.Graph) {
			cat.Extend(in.Graph)
		}
		b.Run(in.Name, func(b *testing.B) {
			cost, phase := 0, 0
			for i := 0; i < b.N; i++ {
				res, err := esst.Explore(in.Graph, in.Explorer, in.Tok, cat,
					&sched.RoundRobin{}, 50_000_000)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Done {
					b.Fatal("ESST did not terminate")
				}
				cost, phase = res.Cost, res.Phase
			}
			b.ReportMetric(float64(cost), "cost")
			b.ReportMetric(float64(phase), "phase")
		})
	}
}

// BenchmarkE6Certifier measures the exhaustive lattice adversary itself:
// grid cells processed per second over growing prefixes.
func BenchmarkE6Certifier(b *testing.B) {
	env := benchEnv(b)
	g := graph.Path(3)
	for _, prefix := range []int{500, 2000, 8000} {
		b.Run(fmt.Sprintf("prefix=%d", prefix), func(b *testing.B) {
			ra := core.Route(g, 0, 1, env, prefix)
			rb := core.Route(g, 2, 2, env, prefix)
			b.ResetTimer()
			forced := false
			for i := 0; i < b.N; i++ {
				res, err := sched.Certify(ra, rb)
				if err != nil {
					b.Fatal(err)
				}
				forced = res.Forced
			}
			b.ReportMetric(b2f(forced), "forced")
			b.ReportMetric(float64(4*prefix*prefix), "cells")
		})
	}
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkE7Lemmas measures the inequality sweep of table E7.
func BenchmarkE7Lemmas(b *testing.B) {
	m := costmodel.New(costmodel.PLinear(2))
	for i := 0; i < b.N; i++ {
		if !costmodel.AllHold(m.CheckLemmas(5, 8)) {
			b.Fatal("lemma inequality failed")
		}
	}
}

// BenchmarkE8SGL regenerates table E8: full Strong Global Learning runs.
func BenchmarkE8SGL(b *testing.B) {
	env := benchEnv(b)
	for _, in := range experiments.DefaultSGLInstances()[:3] {
		b.Run(in.Name, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				res, err := sgl.Run(sgl.Config{
					Graph:    in.Graph,
					Starts:   in.Starts,
					Labels:   in.Labels,
					Env:      env,
					MaxSteps: 40_000_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.AllOutput {
					b.Fatal("SGL incomplete")
				}
				total = res.TotalCost
			}
			b.ReportMetric(float64(total), "total-cost")
		})
	}
}

// BenchmarkF1to4Figures regenerates the structural figures.
func BenchmarkF1to4Figures(b *testing.B) {
	env := benchEnv(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.F1to4(env, 3)
	}
	b.ReportMetric(float64(len(out)), "bytes")
}

// BenchmarkAblationUXSSource compares trajectory-prefix generation under
// the verified compact catalog versus the cubic pseudorandom one
// (DESIGN.md §8: UXS source ablation).
func BenchmarkAblationUXSSource(b *testing.B) {
	g := graph.Ring(5)
	for name, cat := range map[string]uxs.Catalog{
		"verified-random": uxs.NewVerified(uxs.DefaultFamily(5), 1),
		"verified-greedy": uxs.NewVerifiedGreedy(uxs.DefaultFamily(5), 1),
		"pseudorandom-k3": uxs.NewFormula(1, 1),
	} {
		env := trajectory.NewEnv(cat)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr, _ := trajectory.Run(g, 0, env.Y(2), 50_000)
				_ = tr
			}
			b.ReportMetric(float64(env.Catalog().P(5)), "P(5)")
		})
	}
}

// BenchmarkAblationAdversary compares measured meeting cost across
// adversary strengths on one instance (DESIGN.md §8).
func BenchmarkAblationAdversary(b *testing.B) {
	env := benchEnv(b)
	in := experiments.DefaultRVInstances()[1] // path4
	for _, name := range []string{"round-robin", "biased", "late-wake", "random", "avoider"} {
		b.Run(name, func(b *testing.B) {
			cost := 0
			for i := 0; i < b.N; i++ {
				adv := sched.Strategies(2)[name]()
				res, err := core.Rendezvous(in.Graph, in.S1, in.S2, in.L1, in.L2,
					env, adv, 500_000)
				if err != nil {
					b.Fatal(err)
				}
				if res.Met {
					cost = res.Meeting.Cost
				}
			}
			b.ReportMetric(float64(cost), "meet-cost")
		})
	}
}

// BenchmarkEngineRunPrepared measures one engine-run of a rendezvous
// scenario on the warm prepared-scenario cache (graph, coverage and
// routes amortized — the sweep steady state) against the uncached path
// (WithPreparedCache(false): every run re-builds, re-covers and
// re-derives its trajectories).
func BenchmarkEngineRunPrepared(b *testing.B) {
	ctx := context.Background()
	sc := Scenario{
		Kind:      ScenarioRendezvous,
		Graph:     GraphSpec{Kind: "ring", N: 5},
		Starts:    []int{0, 2},
		Labels:    []Label{2, 5},
		Adversary: "avoider",
		Budget:    10_000,
	}
	b.Run("warm-cache", func(b *testing.B) {
		eng := NewEngine()
		if _, err := eng.Run(ctx, sc); err == nil || errors.Is(err, ErrBudgetExhausted) {
			// warmed; exhaustion is the expected outcome under the avoider
		} else {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(ctx, sc); err != nil && !errors.Is(err, ErrBudgetExhausted) {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-cache", func(b *testing.B) {
		eng := NewEngine(WithPreparedCache(false))
		if _, err := eng.Run(ctx, sc); err != nil && !errors.Is(err, ErrBudgetExhausted) {
			b.Fatal(err) // catalog warm-up only; preparation stays cold
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(ctx, sc); err != nil && !errors.Is(err, ErrBudgetExhausted) {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSweepThroughput measures end-to-end campaign throughput in
// cells/sec — the quantity BENCH_sched.json's prep/run split records —
// on the warm and uncached engines.
func BenchmarkSweepThroughput(b *testing.B) {
	ctx := context.Background()
	spec := SweepSpec{
		Name:  "bench-sweep",
		Seed:  "bench-sweep-v1",
		Kinds: []string{"rendezvous"},
		Graphs: []SweepGraphAxis{
			{Kind: "path", Sizes: []int{4, 5}},
			{Kind: "ring", Sizes: []int{4, 5}},
		},
		Adversaries: []string{"", "avoider", "random"},
		Budget:      20_000,
	}
	cells, err := CountSweep(spec)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, eng *Engine) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := eng.Sweep(ctx, spec)
			if err != nil {
				b.Fatal(err)
			}
			if !rep.OK() {
				b.Fatalf("oracle failures:\n%s", rep.Table())
			}
		}
		b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/sec")
	}
	b.Run("warm-cache", func(b *testing.B) {
		eng := NewEngine()
		if _, err := eng.Sweep(ctx, spec); err != nil {
			b.Fatal(err) // fill the prepared-scenario cache
		}
		run(b, eng)
	})
	b.Run("cold-cache", func(b *testing.B) {
		run(b, NewEngine(WithPreparedCache(false)))
	})
}

// BenchmarkRunnerThroughput measures raw scheduler half-steps per second
// (the simulator substrate's capacity).
func BenchmarkRunnerThroughput(b *testing.B) {
	g := graph.Ring(6)
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Rendezvous(g, 0, 3, 1, 3, env, &sched.RoundRobin{}, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkStepperThroughput measures pure trajectory generation speed
// without the scheduler.
func BenchmarkStepperThroughput(b *testing.B) {
	env := benchEnv(b)
	g := graph.Ring(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, _ := trajectory.Run(g, 0, core.NewStepper(5, env), 100_000)
		if tr.Moves() != 100_000 {
			b.Fatal("short run")
		}
	}
}
