// Command sglsim runs Algorithm SGL (Strong Global Learning) for a team
// of agents and reports all four application outputs, or regenerates
// table E8.
//
// Usage:
//
//	sglsim -graph star -n 5 -starts 1,2,3 -labels 4,2,7
//	sglsim -table E8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"meetpoly/internal/experiments"
	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/sgl"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	gkind := flag.String("graph", "star", "path|ring|star|clique|bintree|random")
	n := flag.Int("n", 5, "graph size")
	seed := flag.Int64("seed", 1, "seed for random graphs and the catalog")
	startsFlag := flag.String("starts", "1,2,3", "comma-separated start nodes")
	labelsFlag := flag.String("labels", "4,2,7", "comma-separated labels")
	budget := flag.Int("budget", 40_000_000, "scheduler event budget")
	table := flag.Bool("table", false, "print table E8 over the default instance suite")
	famMax := flag.Int("family", 6, "catalog family max size")
	flag.Parse()

	env := trajectory.NewEnv(uxs.NewVerified(uxs.DefaultFamily(*famMax), *seed))
	if *table {
		experiments.E8SGL(env, experiments.DefaultSGLInstances(), *budget).Render(os.Stdout)
		return
	}

	var g *graph.Graph
	switch *gkind {
	case "path":
		g = graph.Path(*n)
	case "ring":
		g = graph.Ring(*n)
	case "star":
		g = graph.Star(*n)
	case "clique":
		g = graph.Complete(*n)
	case "bintree":
		g = graph.BinaryTree(*n)
	case "random":
		g = graph.RandomConnected(*n, 0.3, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown graph kind %q\n", *gkind)
		os.Exit(2)
	}
	if v, ok := env.Catalog().(*uxs.Verified); ok && !v.Covers(g) {
		v.Extend(g)
	}
	starts, err := parseInts(*startsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -starts:", err)
		os.Exit(2)
	}
	rawLabels, err := parseInts(*labelsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -labels:", err)
		os.Exit(2)
	}
	labs := make([]labels.Label, len(rawLabels))
	for i, v := range rawLabels {
		labs[i] = labels.Label(v)
	}

	res, err := sgl.Run(sgl.Config{
		Graph:    g,
		Starts:   starts,
		Labels:   labs,
		Env:      env,
		MaxSteps: *budget,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("graph=%s team k=%d total cost=%d all-output=%v\n",
		g, len(labs), res.TotalCost, res.AllOutput)
	for _, a := range res.Agents {
		if !a.HasOutput {
			fmt.Printf("  L%-4d state=%-9s NO OUTPUT (raise -budget)\n", a.Label, a.State)
			continue
		}
		fmt.Printf("  L%-4d state=%-9s team=%d leader=L%d newname=%d traversals=%d output=%v\n",
			a.Label, a.State, a.TeamSize, a.Leader, a.NewName, a.Traversals, a.Output)
	}
}
