// Quickstart: two agents with labels 2 and 5 meet on a 4-node path under
// an adversarial schedule, at cost polynomial in the graph size and the
// shorter label's length (Algorithm RV-asynch-poly, PODC 2013).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"meetpoly"
)

func main() {
	// An engine whose exploration sequences are verified on the
	// standard graph families up to 6 nodes (the Reingold substitute,
	// DESIGN.md §2.1). Build it once and reuse it: it owns the shared
	// verified catalog.
	eng := meetpoly.NewEngine(meetpoly.WithMaxN(6), meetpoly.WithSeed(1))

	// A scenario is declarative and JSON-serializable: the network
	// (anonymous nodes, local port numbers only), the agents at opposite
	// ends, and the adversary controlling their speeds. Try "avoider"
	// for the strongest online dodger.
	sc := meetpoly.Scenario{
		Kind:      meetpoly.ScenarioRendezvous,
		Graph:     meetpoly.GraphSpec{Kind: "path", N: 4},
		Starts:    []int{0, 3},
		Labels:    []meetpoly.Label{2, 5},
		Adversary: "roundrobin",
		Budget:    2_000_000,
	}
	res, err := eng.Run(context.Background(), sc)
	if err != nil && !errors.Is(err, meetpoly.ErrBudgetExhausted) {
		log.Fatal(err)
	}

	rv := res.Rendezvous
	fmt.Printf("met: %v\n", rv.Met)
	if rv.Met {
		where := fmt.Sprintf("node %d", rv.Meeting.Node)
		if rv.Meeting.InEdge {
			where = fmt.Sprintf("inside edge %v", rv.Meeting.Edge)
		}
		fmt.Printf("meeting point: %s\n", where)
		fmt.Printf("measured cost: %d edge traversals\n", rv.Meeting.Cost)
	}
	fmt.Printf("Theorem 3.1 guarantee Pi(n, |L_min|): %d bits\n", rv.Bound.BitLen())
	fmt.Println("(measured cost is tiny next to the worst-case bound — that gap is the paper's point:")
	fmt.Println(" the bound holds against EVERY adversary, not just this schedule)")
}
