package sched

import "meetpoly/internal/trajectory"

// Walker adapts a trajectory.Stepper to a sched agent: the standard shape
// of a rendezvous agent, which follows a predetermined (label-dependent)
// trajectory until it meets someone. Decisions depend only on the agent's
// own observations, exactly as the model demands. Walker is a native
// sched.Stepper, so runners dispatch it on the zero-handoff fast path;
// its blocking Run is the canonical RunStepper loop over the same Step.
type Walker struct {
	// Stepper supplies the route. The Walker halts when it is exhausted.
	Stepper trajectory.Stepper
	// StopAtMeeting halts the walker at the next node decision after a
	// meeting (rendezvous semantics: the task is over).
	StopAtMeeting bool
	// Payload is shared with peers at meetings.
	Payload any

	metCount int
}

var _ Stepper = (*Walker)(nil)

// Step implements Stepper: one route decision per invocation.
func (w *Walker) Step(_ *Proc, o Observation) Action {
	if w.StopAtMeeting && w.metCount > 0 {
		return Action{Halt: true}
	}
	entry := o.Entry
	if entry < 0 {
		entry = 0 // fresh-start convention for the trajectory
	}
	port, ok := w.Stepper.Next(o.Degree, entry)
	if !ok {
		return Action{Halt: true}
	}
	return Action{Port: port}
}

// Run implements Agent for the goroutine core.
func (w *Walker) Run(p *Proc) { RunStepper(w, p) }

// Publish implements Agent.
func (w *Walker) Publish() any { return w.Payload }

// OnMeet implements Agent.
func (w *Walker) OnMeet(Encounter) { w.metCount++ }

// Met reports whether the walker has met anyone.
func (w *Walker) Met() bool { return w.metCount > 0 }

// MeetCount returns the number of meetings delivered to this walker.
func (w *Walker) MeetCount() int { return w.metCount }
