// Certify demonstrates the exhaustive lattice adversary: instead of
// testing rendezvous against a handful of schedules, it decides — by
// dynamic programming over all interleavings of the two agents'
// half-steps — whether ANY schedule the continuous adversary could choose
// avoids the meeting within given route prefixes, and reports the exact
// worst-case meeting cost when it cannot. Each instance is one
// declarative certify scenario fanned out through Engine.RunBatch.
package main

import (
	"context"
	"fmt"
	"log"

	"meetpoly"
)

func main() {
	eng := meetpoly.NewEngine(meetpoly.WithMaxN(6), meetpoly.WithSeed(1))

	const prefix = 4000
	scs := []meetpoly.Scenario{
		{Name: "path-2", Kind: meetpoly.ScenarioCertify,
			Graph:  meetpoly.GraphSpec{Kind: "path", N: 2},
			Starts: []int{0, 1}, Labels: []meetpoly.Label{1, 2}, Moves: prefix},
		{Name: "path-3", Kind: meetpoly.ScenarioCertify,
			Graph:  meetpoly.GraphSpec{Kind: "path", N: 3},
			Starts: []int{0, 2}, Labels: []meetpoly.Label{1, 2}, Moves: prefix},
		{Name: "star-4", Kind: meetpoly.ScenarioCertify,
			Graph:  meetpoly.GraphSpec{Kind: "star", N: 4},
			Starts: []int{1, 2}, Labels: []meetpoly.Label{2, 3}, Moves: prefix},
		{Name: "ring-4 (oriented)", Kind: meetpoly.ScenarioCertify,
			Graph:  meetpoly.GraphSpec{Kind: "ring", N: 4},
			Starts: []int{0, 2}, Labels: []meetpoly.Label{1, 3}, Moves: prefix},
	}

	fmt.Printf("exhaustive certification on %d-move route prefixes of RV-asynch-poly\n\n", prefix)
	for _, br := range eng.RunBatch(context.Background(), scs) {
		if br.Err != nil {
			log.Fatal(br.Err)
		}
		res := br.Result.Cert
		if res.Forced {
			fmt.Printf("%-18s FORCED: every schedule meets; worst case %d completed traversals "+
				"(longest dodge: %d half-steps)\n", br.Scenario.Name, res.WorstCompleted, res.SafestDepth)
		} else {
			fmt.Printf("%-18s escape exists within the prefix (symmetry or short prefix); "+
				"the Theorem 3.1 guarantee kicks in deeper into the trajectory\n", br.Scenario.Name)
		}
	}
	fmt.Println("\n'FORCED' is a statement about ALL schedules — the verdict an online")
	fmt.Println("adversary test suite can never give.")
}
