package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// CompactStats reports what Compact rewrote.
type CompactStats struct {
	Cells        int   // sealed results kept
	Ranges       int   // merged intervals after compaction
	BytesBefore  int64 // results.ndjson size before
	BytesAfter   int64 // results.ndjson size after
	RangesBefore int64 // ranges.log size before
	RangesAfter  int64 // ranges.log size after
}

// Compact rewrites a checkpoint directory's two append-only logs into
// their minimal sealed form: results.ndjson holds exactly the sealed
// results, one copy each, sorted by cell index; ranges.log holds the
// merged interval set (a completed campaign compacts to a single
// line). Duplicate records (a crash between result-append and range-
// seal re-executes the boundary cell), unsealed tails and torn lines
// are all dropped — recovery would have ignored them anyway.
//
// Crash safety is write-new / fsync / rename: each log is rewritten to
// a temporary file in the same directory, fsynced, then renamed over
// the original, and the directory is fsynced after each rename. Both
// orders of a mid-compaction crash are safe: the old and new file
// contents describe the same sealed set, so recovery reads an
// equivalent checkpoint whichever mix of old/new files it finds.
//
// Compact must not run concurrently with a live writer on the same
// directory — rvserved's one-live-run lock (409) is the service-level
// guard; `rvserved -compact` is the offline entry point.
func Compact(dir string) (CompactStats, error) {
	var st CompactStats
	st.BytesBefore = fileSize(filepath.Join(dir, resultsFile))
	st.RangesBefore = fileSize(filepath.Join(dir, rangesFile))

	// Recovery is the read path: it already merges intervals, truncates
	// torn tails and drops unsealed or duplicate results.
	cp, err := OpenCheckpoint(dir)
	if err != nil {
		return st, err
	}
	sealed := cp.Completed()
	recovered := cp.Recovered()
	if err := cp.Close(); err != nil {
		return st, err
	}
	if got, want := len(recovered), sealed.Len(); got != want {
		// A sealed range whose results are missing breaks the core
		// invariant; compacting would launder the corruption into a
		// clean-looking checkpoint. Refuse and name the damage.
		return st, fmt.Errorf("serve: compact %s: checkpoint is corrupt: %d sealed indices but %d recoverable results", dir, want, got)
	}

	sort.Slice(recovered, func(i, j int) bool { return recovered[i].Cell.Index < recovered[j].Cell.Index })
	var res bytes.Buffer
	for _, cr := range recovered {
		line, err := json.Marshal(cr)
		if err != nil {
			return st, fmt.Errorf("serve: compact: encoding result: %w", err)
		}
		res.Write(line)
		res.WriteByte('\n')
	}
	var rng bytes.Buffer
	ranges := sealed.Ranges()
	for _, iv := range ranges {
		fmt.Fprintf(&rng, "%d %d\n", iv.Lo, iv.Hi)
	}

	if err := replaceFile(dir, resultsFile, res.Bytes()); err != nil {
		return st, err
	}
	if err := replaceFile(dir, rangesFile, rng.Bytes()); err != nil {
		return st, err
	}
	st.Cells = len(recovered)
	st.Ranges = len(ranges)
	st.BytesAfter = int64(res.Len())
	st.RangesAfter = int64(rng.Len())
	return st, nil
}

// replaceFile atomically replaces dir/name with data: write a temp
// file beside it, fsync, rename, fsync the directory.
func replaceFile(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".compact-*")
	if err != nil {
		return fmt.Errorf("serve: compact: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: compact: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: compact: fsync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: compact: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("serve: compact: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // best-effort directory durability
		d.Close()
	}
	return nil
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}
