package meetpoly

import (
	"context"
	"fmt"

	"meetpoly/internal/campaign"
)

// CrossCheckOracle returns the cross-core sweep oracle: it re-executes
// every completed cell on ref — an engine configured with the other
// execution core, typically NewEngine(WithCatalog(cat),
// WithDirectDispatch(false)) sharing the sweeping engine's catalog —
// and fails unless the two cores produced identical outcomes (goal,
// cost, per-agent maximum, committed traversals and how the run ended).
//
// This is the standing form of the differential equivalence argument of
// DESIGN.md §2.2: wiring it into a sweep's oracle suite makes every
// future campaign cross-check the direct-dispatch fast path against the
// goroutine core. Canceled and invalid cells verified nothing and are
// skipped, as is certify (it never touches the scheduler's cores).
func CrossCheckOracle(ref *Engine) SweepOracle {
	return campaign.OracleFunc{ID: "cross-core", F: func(c SweepCell, o SweepOutcome) error {
		if o.Canceled || o.Invalid || c.Kind == campaign.KindCertify {
			return nil
		}
		sc := CellScenario(c)
		res, err := ref.Run(context.Background(), sc)
		ro := sweepOutcome(c, BatchResult{Index: c.Index, Scenario: sc, Result: res, Err: err})
		if ro.Met != o.Met || ro.Cost != o.Cost || ro.MaxPerAgent != o.MaxPerAgent ||
			ro.Committed != o.Committed || ro.Exhausted != o.Exhausted ||
			ro.EndedEarly != o.EndedEarly || ro.Consistent != o.Consistent {
			return fmt.Errorf("execution cores diverge: this core %+v, reference core %+v", o, ro)
		}
		return nil
	}}
}
