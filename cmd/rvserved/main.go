// Command rvserved is the sweep service: a long-lived HTTP daemon that
// accepts campaign SweepSpec JSON, executes this instance's shard of
// the deterministic cell index-range over a shared engine, streams cell
// results as NDJSON while they complete, and checkpoints completed
// index ranges to disk so a crashed or restarted shard resumes without
// recomputing a single cell. A campaign resumed across any number of
// crashes produces the byte-identical report an uninterrupted
// single-process `rvsweep -json` run produces.
//
// Endpoints (see internal/serve):
//
//	POST /v1/sweep        stream the shard's cell results as NDJSON
//	POST /v1/sweep/report run the shard, respond with the report JSON
//	GET  /healthz         200 ok (with the build version); 503 once draining
//	GET  /v1/stats        service counters and engine cache stats
//	GET  /metrics         Prometheus text exposition of every series
//	GET  /debug/pprof/*   runtime profiles (only with -pprof)
//
// Horizontal scale is the -shard flag: rvserved -shard 1/3 owns the
// middle third of every campaign's index range, with its own
// checkpoint subdirectory; the shards' streams fold into one report
// through the order-independent aggregator.
//
// SIGTERM/SIGINT drain gracefully: new sweeps are refused (503),
// in-flight runs are canceled — their checkpoints flush everything
// completed so far — and the process exits once they finish or the
// drain timeout expires.
//
// Beyond the daemon, three more modes:
//
//	-coordinator URL  worker mode: pull leases from an rvcoord
//	                  instance, execute them, stream results back,
//	                  heartbeat while running; exits 0 when the
//	                  campaign is done
//	-chaos SPEC       thread a deterministic fault-injection schedule
//	                  (see internal/faultinject) through the daemon or
//	                  worker: checkpoint write/fsync faults, stream
//	                  resets, delays, 503 bursts, kill-after-flush
//	-compact DIR      offline: rewrite a checkpoint directory's logs
//	                  to their minimal sealed form, print stats, exit
//
// Exit codes: 0 clean shutdown / campaign done; 1 runtime error; 2
// usage error; 137 an injected -chaos kill fired (the process
// stand-in for kill -9 — the coordinator's lease expiry takes over).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"meetpoly"
	"meetpoly/internal/buildinfo"
	"meetpoly/internal/faultinject"
	"meetpoly/internal/serve"
	"meetpoly/internal/serve/coord"
	"meetpoly/internal/telemetry/logx"
)

func main() {
	var (
		addr        = flag.String("addr", ":8747", "address to listen on")
		checkpoints = flag.String("checkpoints", "", "checkpoint root directory (empty disables resume)")
		shard       = flag.String("shard", "0/1", "this instance's shard as i/of (e.g. 1/3 = the middle third of every campaign)")
		maxN        = flag.Int("maxn", 6, "size ceiling of the engine's verified catalog family")
		seed        = flag.Int64("seed", 1, "seed of the engine's verified catalog")
		parallelism = flag.Int("parallelism", 0, "worker pool size (0 = GOMAXPROCS)")
		flushEvery  = flag.Int("flush-every", serve.DefaultFlushEvery, "checkpoint flush interval in completed cells")
		maxCells    = flag.Int("max-cells", 0, "reject campaigns expanding past this many cells (0 = unlimited)")
		maxTenant   = flag.Int("max-tenant-sweeps", serve.DefaultMaxTenantSweeps, "max in-flight sweeps per tenant (X-Tenant header)")
		timeout     = flag.Duration("timeout", 0, "per-request sweep budget (0 = unbounded; requests may tighten with ?budget_ms=)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight sweeps on shutdown")
		coordinator = flag.String("coordinator", "", "worker mode: pull leases from this rvcoord base URL instead of serving HTTP")
		workerName  = flag.String("worker-name", "", "worker mode: name reported to the coordinator (default the hostname)")
		chaos       = flag.String("chaos", "", "deterministic fault-injection spec (see internal/faultinject), e.g. 'seed=7,kill=2,reset=rand:30'")
		compactDir  = flag.String("compact", "", "offline: compact this checkpoint directory's logs and exit")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the service mux")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		version     = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rvserved"))
		return
	}
	level, err := logx.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvserved:", err)
		flag.Usage()
		os.Exit(2)
	}
	logger := logx.New(os.Stderr, level)
	shardIdx, shardOf, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvserved:", err)
		flag.Usage()
		os.Exit(2)
	}
	var inj *faultinject.Injector
	if *chaos != "" {
		inj, err = faultinject.New(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rvserved:", err)
			os.Exit(2)
		}
		// The resolved plan is the reproduction recipe: log it.
		logger.Info("chaos schedule resolved", logx.F("schedule", inj.Schedule()))
	}

	if *compactDir != "" {
		st, err := serve.Compact(*compactDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rvserved:", err)
			os.Exit(1)
		}
		fmt.Printf("compacted %s: %d cells, %d ranges, results %d -> %d bytes, ranges %d -> %d bytes\n",
			*compactDir, st.Cells, st.Ranges, st.BytesBefore, st.BytesAfter, st.RangesBefore, st.RangesAfter)
		return
	}

	opts := []meetpoly.Option{meetpoly.WithMaxN(*maxN), meetpoly.WithSeed(*seed)}
	if *parallelism > 0 {
		opts = append(opts, meetpoly.WithParallelism(*parallelism))
	}

	if *coordinator != "" {
		runWorker(*coordinator, *workerName, *checkpoints, *flushEvery, inj, logger, opts)
		return
	}

	// One registry spans the whole process: the engine's cache/batch
	// series and the service's request/checkpoint series scrape from the
	// same /metrics page.
	reg := meetpoly.NewMetrics()
	buildinfo.InfoGauge(reg, "rvserved")
	opts = append(opts, meetpoly.WithTelemetry(reg))

	svc := serve.New(serve.Config{
		Engine:          meetpoly.NewEngine(opts...),
		CheckpointRoot:  *checkpoints,
		Shard:           shardIdx,
		Of:              shardOf,
		FlushEvery:      *flushEvery,
		MaxCells:        *maxCells,
		MaxTenantSweeps: *maxTenant,
		RequestTimeout:  *timeout,
		Faults:          inj,
		Metrics:         reg,
		Log:             logger,
		Pprof:           *pprofOn,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening",
		logx.F("shard", fmt.Sprintf("%d/%d", shardIdx, shardOf)), logx.F("addr", *addr))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "rvserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	// Drain before Shutdown: refuse new sweeps, cancel the in-flight
	// ones (their checkpoints flush, so a restart resumes, not
	// recomputes), then close the listener and idle connections.
	logger.Info("draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	code := 0
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "rvserved:", err)
		code = 1
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "rvserved: shutdown:", err)
		code = 1
	}
	os.Exit(code)
}

// runWorker is the -coordinator mode: a lease-pulling fleet worker.
// An injected kill (chaos kill=<k>) exits 137 like a real kill -9; the
// coordinator's lease expiry handles the rest.
func runWorker(coordURL, name, checkpoints string, flushEvery int, inj *faultinject.Injector, logger *logx.Logger, opts []meetpoly.Option) {
	if name == "" {
		name, _ = os.Hostname()
	}
	log := logger.With(logx.F("worker", name))
	dir := ""
	if checkpoints != "" {
		dir = filepath.Join(checkpoints, "worker-"+name)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Info("pulling leases", logx.F("coordinator", coordURL))
	err := coord.RunWorker(ctx, coord.WorkerConfig{
		Coordinator: coordURL,
		Engine:      meetpoly.NewEngine(opts...),
		Name:        name,
		Dir:         dir,
		FlushEvery:  flushEvery,
		Faults:      inj,
	})
	switch {
	case err == nil:
		log.Info("campaign done")
	case errors.Is(err, faultinject.ErrKilled):
		log.Warn("injected kill")
		os.Exit(137)
	default:
		log.Error("worker failed", logx.F("err", err))
		os.Exit(1)
	}
}

// parseShard parses the -shard flag's "i/of" form: of >= 1 and
// 0 <= i < of.
func parseShard(s string) (i, of int, err error) {
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard must be i/of, got %q", s)
	}
	i, err1 := strconv.Atoi(a)
	of, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || of < 1 || i < 0 || i >= of {
		return 0, 0, fmt.Errorf("-shard must be i/of with 0 <= i < of, got %q", s)
	}
	return i, of, nil
}
