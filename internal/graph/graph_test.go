package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildersValidate(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"ring-3", Ring(3), 3, 3},
		{"ring-8", Ring(8), 8, 8},
		{"path-2", Path(2), 2, 1},
		{"path-7", Path(7), 7, 6},
		{"clique-2", Complete(2), 2, 1},
		{"clique-5", Complete(5), 5, 10},
		{"star-6", Star(6), 6, 5},
		{"grid-3x4", Grid(3, 4), 12, 17},
		{"grid-1x2", Grid(1, 2), 2, 1},
		{"torus-3x3", Torus(3, 3), 9, 18},
		{"hypercube-3", Hypercube(3), 8, 12},
		{"kbip-2x3", CompleteBipartite(2, 3), 5, 6},
		{"bintree-7", BinaryTree(7), 7, 6},
		{"lollipop-4+3", Lollipop(4, 3), 7, 9},
		{"petersen", Petersen(), 10, 15},
		{"rtree-9", RandomTree(9, 1), 9, 8},
		{"rand-10", RandomConnected(10, 0.3, 7), 10, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if got := tc.g.N(); got != tc.n {
				t.Errorf("N() = %d, want %d", got, tc.n)
			}
			if tc.m >= 0 {
				if got := tc.g.M(); got != tc.m {
					t.Errorf("M() = %d, want %d", got, tc.m)
				}
			}
		})
	}
}

func TestSuccRoundTrip(t *testing.T) {
	for _, g := range []*Graph{Ring(6), Complete(5), Grid(3, 3), Petersen(), RandomConnected(12, 0.25, 3)} {
		for v := 0; v < g.N(); v++ {
			for p := 0; p < g.Degree(v); p++ {
				u, q := g.Succ(v, p)
				back, backPort := g.Succ(u, q)
				if back != v || backPort != p {
					t.Fatalf("%s: Succ(%d,%d) -> (%d,%d) does not round-trip", g, v, p, u, q)
				}
			}
		}
	}
}

func TestDegreeSums(t *testing.T) {
	for _, g := range []*Graph{Ring(5), Star(7), Hypercube(4), Lollipop(3, 2)} {
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		if sum != 2*g.M() {
			t.Errorf("%s: degree sum %d != 2m = %d", g, sum, 2*g.M())
		}
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Ring(6), 3},
		{Ring(7), 3},
		{Path(5), 4},
		{Complete(8), 1},
		{Star(5), 2},
		{Hypercube(4), 4},
		{Petersen(), 2},
		{Grid(3, 3), 4},
	}
	for _, tc := range cases {
		if got := tc.g.Diameter(); got != tc.want {
			t.Errorf("%s: Diameter = %d, want %d", tc.g, got, tc.want)
		}
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	d := g.BFSDistances(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestEdgesListing(t *testing.T) {
	g := Ring(4)
	es := g.Edges()
	if len(es) != 4 {
		t.Fatalf("got %d edges, want 4", len(es))
	}
	for _, e := range es {
		if e.U >= e.V {
			t.Errorf("edge %+v not canonical", e)
		}
		to, q := g.Succ(e.U, e.PortU)
		if to != e.V || q != e.PortV {
			t.Errorf("edge %+v ports inconsistent", e)
		}
	}
}

func TestEdgeID(t *testing.T) {
	g := Path(3)
	a := g.EdgeID(0, 0)
	u, q := g.Succ(0, 0)
	if u != 1 {
		t.Fatalf("unexpected topology")
	}
	bid := g.EdgeID(1, q)
	if a != bid {
		t.Errorf("EdgeID differs by direction: %v vs %v", a, bid)
	}
}

func TestShufflePortsPreservesStructure(t *testing.T) {
	for _, base := range []*Graph{Ring(8), Grid(3, 3), Petersen()} {
		for seed := int64(0); seed < 5; seed++ {
			s := ShufflePorts(base, seed)
			if err := s.Validate(); err != nil {
				t.Fatalf("%s shuffled: %v", base, err)
			}
			if s.N() != base.N() || s.M() != base.M() {
				t.Fatalf("%s shuffled: size changed", base)
			}
			// Same neighbour sets at every node.
			for v := 0; v < base.N(); v++ {
				want := make(map[int]bool)
				for p := 0; p < base.Degree(v); p++ {
					u, _ := base.Succ(v, p)
					want[u] = true
				}
				for p := 0; p < s.Degree(v); p++ {
					u, _ := s.Succ(v, p)
					if !want[u] {
						t.Fatalf("%s shuffled: node %d gained neighbour %d", base, v, u)
					}
				}
			}
			if s.Diameter() != base.Diameter() {
				t.Fatalf("%s shuffled: diameter changed", base)
			}
		}
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	// Disconnected: two isolated edges.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Graph("disconnected")
	if err := g.Validate(); err == nil {
		t.Error("disconnected graph passed Validate")
	}
	if g.Connected() {
		t.Error("Connected() true for disconnected graph")
	}
	// Empty graph.
	if (&Graph{}).Connected() {
		t.Error("empty graph reported connected")
	}
	if err := (&Graph{}).Validate(); err == nil {
		t.Error("empty graph passed Validate")
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("self-loop", func() { b := NewBuilder(2); b.AddEdge(1, 1) })
	mustPanic("dup", func() { b := NewBuilder(2); b.AddEdge(0, 1); b.AddEdge(1, 0) })
	mustPanic("range", func() { b := NewBuilder(2); b.AddEdge(0, 5) })
	mustPanic("ring-2", func() { Ring(2) })
	mustPanic("path-1", func() { Path(1) })
	mustPanic("torus-2", func() { Torus(2, 3) })
}

func TestRandomConnectedProperty(t *testing.T) {
	f := func(nRaw uint8, pRaw uint8, seed int64) bool {
		n := 2 + int(nRaw)%20
		p := float64(pRaw%100) / 100
		g := RandomConnected(n, p, seed)
		return g.Validate() == nil && g.N() == n && g.M() >= n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomTreeProperty(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := 2 + int(nRaw)%30
		g := RandomTree(n, seed)
		return g.Validate() == nil && g.M() == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDOTAndString(t *testing.T) {
	g := Path(3)
	dot := g.DOT()
	if !strings.Contains(dot, "0 -- 1") || !strings.Contains(dot, "graph G") {
		t.Errorf("DOT output malformed:\n%s", dot)
	}
	if s := g.String(); !strings.Contains(s, "path-3") {
		t.Errorf("String() = %q", s)
	}
	if Single().N() != 1 {
		t.Error("Single() size")
	}
}
