package meetpoly

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"meetpoly/internal/registry"
	"meetpoly/internal/sched"
)

// AdversaryArgs is the structured form of an adversary spec string,
// handed to a registered parser: the family name, the ':'-separated
// parameters after it, and the scenario facts a parser may validate
// against. The splitting is done once, centrally, so parsers never
// re-tokenize the raw string.
type AdversaryArgs struct {
	// Spec is the full original spec string, for error messages.
	Spec string
	// Name is the family name (the part before the first ':').
	Name string
	// Params are the ':'-separated parameters after the name. A
	// trailing or doubled ':' yields empty strings, which parsers
	// conventionally treat as "use the default".
	Params []string
	// HasParams distinguishes "biased" (no parameter section at all)
	// from "biased:" (an empty one): some families default differently.
	HasParams bool
	// Agents is the number of agents in the scenario being validated,
	// or 0 when the spec is parsed outside any scenario (ParseAdversary,
	// CLI flags). Parsers should validate agent-dependent parameters —
	// weight counts, agent indices — only when it is known.
	Agents int
}

// Param returns the i-th parameter, or "" when absent.
func (a AdversaryArgs) Param(i int) string {
	if i < 0 || i >= len(a.Params) {
		return ""
	}
	return a.Params[i]
}

// Rest joins every parameter back into the raw text after the name —
// for families whose single argument may itself contain ':'-free
// structure (the biased weight list).
func (a AdversaryArgs) Rest() string { return strings.Join(a.Params, ":") }

// Errf builds the conventional parse error: it names the offending
// spec and wraps ErrInvalidScenario, like every built-in parser.
func (a AdversaryArgs) Errf(format string, args ...any) error {
	return fmt.Errorf("adversary %q: %s: %w", a.Spec, fmt.Sprintf(format, args...), ErrInvalidScenario)
}

// AdversaryDef describes one adversary family for RegisterAdversary.
type AdversaryDef struct {
	// Name is the family name as written before any ':' in spec strings.
	Name string
	// Aliases are additional accepted spellings ("late-wake" for
	// "latewake"; "" makes the family the default for empty specs).
	Aliases []string
	// PerCellSeed makes campaign sweeps specialize a bare spec (no
	// parameters) into "<name>:<seed>" with a seed derived from each
	// cell's replay string, so cells differ while staying individually
	// replayable — the behaviour the built-in "random" family has.
	PerCellSeed bool
	// Parse builds the strategy from structured parameters. It must be
	// deterministic and return errors wrapping ErrInvalidScenario
	// (args.Errf does both conventions).
	Parse func(args AdversaryArgs) (Adversary, error)
}

// adversaryDefs maps every registered family name and alias to its
// definition (string -> *AdversaryDef). adversaryRegMu serializes
// registrations so the multi-name check-then-insert below is atomic;
// lookups stay lock-free on the sync.Map.
var (
	adversaryDefs  sync.Map
	adversaryRegMu sync.Mutex
)

// RegisterAdversary adds an adversary family to the open world:
// registered names parse everywhere a built-in does — Scenario and
// SweepSpec JSON, ParseAdversary, campaign adversary axes and CLI
// flags — and round-trip through the same spec-string syntax. The
// built-ins are registered through this exact path at package init.
// Duplicate names are rejected, and rejection is all-or-nothing: a
// duplicate alias does not leave the family's earlier names behind.
func RegisterAdversary(def AdversaryDef) error {
	if def.Name == "" {
		return fmt.Errorf("meetpoly: adversary needs a name")
	}
	if def.Parse == nil {
		return fmt.Errorf("meetpoly: adversary %q needs a Parse function", def.Name)
	}
	adversaryRegMu.Lock()
	defer adversaryRegMu.Unlock()
	names := append([]string{def.Name}, def.Aliases...)
	metas := make([]registry.AdversaryMeta, 0, len(names))
	for _, n := range names {
		if _, dup := adversaryDefs.Load(n); dup {
			return fmt.Errorf("meetpoly: adversary %q is already registered", n)
		}
		if n != "" {
			// The empty spelling (default family) has no campaign
			// metadata: a bare "" never specializes per cell.
			metas = append(metas, registry.AdversaryMeta{Name: n, PerCellSeed: def.PerCellSeed})
		}
	}
	// The metadata batch validates-then-inserts under one registry
	// lock, so this either takes effect for every name or for none.
	if err := registry.RegisterAdversaryMetas(metas); err != nil {
		return fmt.Errorf("meetpoly: %v", err)
	}
	for _, n := range names {
		adversaryDefs.Store(n, &def)
	}
	return nil
}

// ParseAdversary resolves a declarative adversary spec string to a
// strategy through the adversary registry, so serialized scenarios and
// command-line flags reach every registered family — built-in or
// custom. The built-in syntax:
//
//	""                        round-robin (the default)
//	"roundrobin"              round-robin ("round-robin" also accepted)
//	"avoider"                 the strongest online meeting dodger
//	"random"                  seeded random schedule, seed 42
//	"random:<seed>"           seeded random schedule
//	"biased:<w1>,<w2>,…"      per-agent speed weights
//	"latewake:<hold>"         all but agent 0 dormant for <hold> events
//	"latewake:<hold>:<agent>" all but <agent> dormant for <hold> events
//	                          ("late-wake:…" also accepted)
//
// Unknown or malformed specs wrap ErrInvalidScenario. Bare "biased"
// needs an agent count and is therefore rejected here but accepted
// inside a Scenario, where it defaults to the 1:5:9:... skew of
// sched.Strategies — parsers see the scenario's agent count through
// AdversaryArgs.Agents, which is 0 for this free-standing entry point.
func ParseAdversary(spec string) (Adversary, error) {
	return parseAdversarySpec(spec, 0)
}

// parseAdversarySpec is ParseAdversary with the scenario's agent count
// threaded through to the family parser (0 = unknown).
func parseAdversarySpec(spec string, agents int) (Adversary, error) {
	name, rest, hasParams := spec, "", false
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, rest, hasParams = spec[:i], spec[i+1:], true
	}
	v, ok := adversaryDefs.Load(name)
	if !ok {
		return nil, fmt.Errorf("unknown adversary %q: %w", spec, ErrInvalidScenario)
	}
	args := AdversaryArgs{Spec: spec, Name: name, HasParams: hasParams, Agents: agents}
	if hasParams {
		args.Params = strings.Split(rest, ":")
	}
	return v.(*AdversaryDef).Parse(args)
}

// The built-in adversary families, registered through the public
// RegisterAdversary — the same path a third party uses.
func init() {
	mustRegisterAdversary := func(def AdversaryDef) {
		if err := RegisterAdversary(def); err != nil {
			panic(err)
		}
	}
	mustRegisterAdversary(AdversaryDef{
		Name: "roundrobin", Aliases: []string{"round-robin", ""},
		Parse: func(args AdversaryArgs) (Adversary, error) { return &sched.RoundRobin{}, nil },
	})
	mustRegisterAdversary(AdversaryDef{
		Name:  "avoider",
		Parse: func(args AdversaryArgs) (Adversary, error) { return &sched.Avoider{}, nil },
	})
	mustRegisterAdversary(AdversaryDef{
		Name: "random", PerCellSeed: true,
		Parse: func(args AdversaryArgs) (Adversary, error) {
			seed := int64(42)
			if s := args.Rest(); s != "" {
				v, err := strconv.ParseInt(s, 10, 64)
				if err != nil {
					return nil, args.Errf("bad seed")
				}
				seed = v
			}
			return sched.NewRandom(seed), nil
		},
	})
	mustRegisterAdversary(AdversaryDef{
		Name:  "biased",
		Parse: parseBiased,
	})
	mustRegisterAdversary(AdversaryDef{
		Name: "latewake", Aliases: []string{"late-wake"},
		Parse: parseLateWake,
	})
}

// parseBiased parses "biased:<w1>,<w2>,…". A bare "biased" (no
// parameter section) inside a scenario defaults to the 1:5:9:... speed
// skew over the scenario's agents; outside one the agent count is
// unknown, so it is rejected.
func parseBiased(args AdversaryArgs) (Adversary, error) {
	arg := args.Rest()
	if arg == "" {
		if !args.HasParams && args.Agents > 0 {
			ws := make([]int, args.Agents)
			for i := range ws {
				ws[i] = 1 + 4*i
			}
			return &sched.Biased{Weights: ws}, nil
		}
		return nil, args.Errf("biased needs weights")
	}
	parts := strings.Split(arg, ",")
	ws := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return nil, args.Errf("bad weight %q", p)
		}
		ws[i] = v
	}
	// A weight/agent mismatch panics inside the runner (a programming
	// error there); from a declarative descriptor it is user input, so
	// reject it during scenario validation, when the count is known.
	if args.Agents > 0 && len(ws) != args.Agents {
		return nil, args.Errf("%d weights for %d agents", len(ws), args.Agents)
	}
	return &sched.Biased{Weights: ws}, nil
}

// parseLateWake parses "latewake:<hold>" and "latewake:<hold>:<agent>":
// every agent except <agent> (default 0) stays dormant for <hold>
// events (default 200), so sweeps can starve any agent, not just the
// first.
func parseLateWake(args AdversaryArgs) (Adversary, error) {
	if len(args.Params) > 2 {
		return nil, args.Errf("too many parameters (want <hold> or <hold>:<agent>)")
	}
	hold, primary := 200, 0
	if s := args.Param(0); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			return nil, args.Errf("bad hold")
		}
		hold = v
	}
	if s := args.Param(1); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			return nil, args.Errf("bad agent %q", s)
		}
		primary = v
	}
	// An out-of-range primary would index past the runner's agent
	// slice; like biased weights, it is rejected here when the
	// scenario's agent count is known.
	if args.Agents > 0 && primary >= args.Agents {
		return nil, args.Errf("agent %d out of range for %d agents", primary, args.Agents)
	}
	return &sched.LateWake{Primary: primary, Hold: hold}, nil
}
