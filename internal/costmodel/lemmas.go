package costmodel

import (
	"fmt"
	"math/big"
)

// Ineq is one verified counting inequality from the synchronization
// lemmas (Lemmas 3.2-3.6) or the case analysis of Theorem 3.1. LHS must
// strictly exceed RHS for the paper's argument to go through.
type Ineq struct {
	Name     string
	N, L     int // graph size and modified-label length l
	LHS, RHS *big.Int
	Holds    bool
}

func ineq(name string, n, l int, lhs, rhs *big.Int) Ineq {
	return Ineq{Name: name, N: n, L: l, LHS: lhs, RHS: rhs, Holds: lhs.Cmp(rhs) > 0}
}

// CheckLemmas evaluates, for graph size n and modified-label length l,
// the counting inequalities that the proofs of Lemmas 3.2-3.6 and
// Theorem 3.1 rest on. Each inequality compares a supply of integral
// trajectories performed by one agent against a demand of edge traversals
// available to the other; the lemma holds when supply exceeds demand.
func (m *Model) CheckLemmas(n, l int) []Ineq {
	if n < 2 || l < 4 {
		panic("costmodel: CheckLemmas needs n >= 2 and l >= 4")
	}
	var out []Ineq
	nl := n + l
	g := 2 * nl // the index 2(n+l) used throughout Lemma 3.3-3.6
	nn := g + 1 // 2(n+l)+1

	// Lemma 3.2: integral X(n+l) copies in Ω(n+l) versus the first
	// piece: (2(n+l)-1)|K(n+l)| > 2(|A(4)| + |B(2)|).
	lhs := new(big.Int).Mul(big.NewInt(int64(2*nl-1)), m.KStar(nl))
	rhs := new(big.Int).Add(m.AStar(4), m.BStar(2))
	rhs.Lsh(rhs, 1)
	out = append(out, ineq("L3.2: Ω(n+l) copies vs T(1)", n, l, lhs, rhs))

	// Lemma 3.3 (piece bound): for every k <= 2(n+l),
	// (k-1)K*_k + 2k(A*_4k + B*_2k) < (2k-1)K*_k, i.e. the fence
	// Ω(2(n+l)) out-supplies any piece T(k). Verify the worst k.
	worst := struct {
		k    int
		diff *big.Int
	}{0, nil}
	for k := 1; k <= g; k++ {
		piece := new(big.Int).Mul(big.NewInt(int64(k-1)), m.KStar(k))
		seg := new(big.Int).Add(m.AStar(4*k), m.BStar(2*k))
		seg.Mul(seg, big.NewInt(int64(2*k)))
		piece.Add(piece, seg)
		fence := new(big.Int).Mul(big.NewInt(int64(2*k-1)), m.KStar(k))
		diff := new(big.Int).Sub(fence, piece)
		if worst.diff == nil || diff.Cmp(worst.diff) < 0 {
			worst.k, worst.diff = k, diff
		}
	}
	lhsP := new(big.Int).Mul(big.NewInt(int64(2*worst.k-1)), m.KStar(worst.k))
	rhsP := new(big.Int).Sub(lhsP, worst.diff)
	out = append(out, ineq(fmt.Sprintf("L3.3: (2k-1)K*_k vs piece T(k), worst k=%d", worst.k), n, l, lhsP, rhsP))

	// Lemma 3.3 (fence supply): copies of X(2(n+l)) in Ω(2(n+l)) exceed
	// the traversals of any piece T(k), k <= 2(n+l). The fence holds
	// (2g-1)K*_g integral copies; a piece costs at most
	// (k-1)K*_k + 2k(A*_{4k} + B*_{2k}).
	lhsF := new(big.Int).Mul(big.NewInt(int64(2*g-1)), m.KStar(g))
	rhsWorst := new(big.Int)
	for k := 1; k <= g; k++ {
		pc := new(big.Int).Mul(big.NewInt(int64(k-1)), m.KStar(k))
		seg := new(big.Int).Add(m.AStar(4*k), m.BStar(2*k))
		seg.Mul(seg, big.NewInt(int64(2*k)))
		pc.Add(pc, seg)
		if pc.Cmp(rhsWorst) > 0 {
			rhsWorst.Set(pc)
		}
	}
	out = append(out, ineq("L3.3: Ω(2(n+l)) X-copies vs any T(k)", n, l, lhsF, rhsWorst))

	// Lemma 3.4: copies of X(2(n+l)) in Ω(2(n+l)) — at least
	// 2(|A(8·2(n+l))| + |B(4·2(n+l))|) — exceed the last atom M of any
	// piece j <= 2(n+l): |M| < |B(2j)| + |A(4j)|.
	lhsM := new(big.Int).Add(m.AStar(8*g), m.BStar(4*g))
	lhsM.Lsh(lhsM, 1)
	rhsM := new(big.Int).Add(m.BStar(2*g), m.AStar(4*g))
	out = append(out, ineq("L3.4: Ω(2(n+l)) X-copies vs last atom M", n, l, lhsM, rhsM))

	// Lemma 3.6 Case 1: the border K(2(n+l)+1) contains
	// 2(|B(4(2(n+l)+1))| + |A(8(2(n+l)+1))|) integral X's, versus a
	// segment S_mu(j+1) of 2(|B(2(j+1))| + |A(4(j+1))|) traversals with
	// j+1 <= 2(n+l)+1.
	lhs1 := new(big.Int).Add(m.BStar(4*nn), m.AStar(8*nn))
	lhs1.Lsh(lhs1, 1)
	rhs1 := new(big.Int).Add(m.BStar(2*nn), m.AStar(4*nn))
	rhs1.Lsh(rhs1, 1)
	out = append(out, ineq("L3.6 case 1: K(2(n+l)+1) X-copies vs S_mu(j+1)", n, l, lhs1, rhs1))

	// Lemma 3.6 Case 2: border K(j+1), j >= n+l+1, contains
	// 2(|A(8(j+1))| + |B(4(j+1))|) >= 2(|A(8(n+l+2))| + |B(4(n+l+2))|)
	// integral X's, versus S_mu(2(n+l)+1) with fewer than
	// 2(|A(8(n+l)+4)| + |B(4(n+l)+2)|) traversals.
	lhs2 := new(big.Int).Add(m.AStar(8*(nl+2)), m.BStar(4*(nl+2)))
	lhs2.Lsh(lhs2, 1)
	rhs2 := new(big.Int).Add(m.AStar(8*nl+4), m.BStar(4*nl+2))
	rhs2.Lsh(rhs2, 1)
	out = append(out, ineq("L3.6 case 2: K(j+1) X-copies vs S_mu(2(n+l)+1)", n, l, lhs2, rhs2))

	// Theorem 3.1, bit = 1, subcase "a finishes B(2(j+1)) first":
	// B(2(j+1)) contains 2|A(8j+8)| >= 2|A(8(n+l+1)+8)| integral
	// Y(2(j+1)) copies versus |S_lambda(2(n+l)+1)| = 2|A(8(n+l)+4)|.
	lhsT1 := new(big.Int).Lsh(m.AStar(8*(nl+1)+8), 1)
	rhsT1 := new(big.Int).Lsh(m.AStar(8*nl+4), 1)
	out = append(out, ineq("T3.1 bit1: B(2(j+1)) Y-copies vs S_lambda(2(n+l)+1)", n, l, lhsT1, rhsT1))

	// Theorem 3.1, bit = 0, subcase "b finishes B(2(2(n+l)+1)) first":
	// B(2(2(n+l)+1)) contains 2|A(16(n+l)+8)| integral Y copies versus
	// |S_lambda(j+1)| = 2|A(4(j+1))| <= 2|A(8(n+l)+4)|.
	lhsT0 := new(big.Int).Lsh(m.AStar(16*nl+8), 1)
	rhsT0 := new(big.Int).Lsh(m.AStar(8*nl+4), 1)
	out = append(out, ineq("T3.1 bit0: B(2(2(n+l)+1)) Y-copies vs S_lambda(j+1)", n, l, lhsT0, rhsT0))

	return out
}

// AllHold reports whether every inequality in the slice holds.
func AllHold(iqs []Ineq) bool {
	for _, iq := range iqs {
		if !iq.Holds {
			return false
		}
	}
	return true
}

// Monotone verifies that the starred quantities are non-decreasing in k
// over 1..kMax — the property the proofs use when replacing an index j by
// a bound. It returns the first violation description, or "".
func (m *Model) Monotone(kMax int) string {
	funcs := []struct {
		name string
		f    func(int) *big.Int
	}{
		{"P", m.P}, {"X*", m.XStar}, {"Q*", m.QStar}, {"Y*", m.YStar},
		{"Z*", m.ZStar}, {"A*", m.AStar}, {"B*", m.BStar}, {"K*", m.KStar},
		{"Ω*", m.OmegaStar},
	}
	for _, fn := range funcs {
		prev := fn.f(1)
		for k := 2; k <= kMax; k++ {
			cur := fn.f(k)
			if cur.Cmp(prev) < 0 {
				return fmt.Sprintf("%s decreases at k=%d", fn.name, k)
			}
			prev = cur
		}
	}
	return ""
}
