package telemetry

import (
	"math/bits"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentRecord hammers one counter, one gauge and one
// histogram from many goroutines; under -race this pins the record
// path as data-race free, and the totals pin it as lossless.
func TestConcurrentRecord(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_ops_total", "ops")
	g := r.Gauge("t_inflight", "inflight")
	h := r.Histogram("t_latency_ns", "latency")

	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(uint64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var want uint64
	for i := 0; i < workers*perWorker; i++ {
		want += uint64(i)
	}
	if got := h.Sum(); got != want {
		t.Errorf("histogram sum = %d, want %d", got, want)
	}
}

// TestSameSeriesSameHandle pins the GetOrCreate contract: the same
// (name, labels) — regardless of label order — yields the same handle,
// and different labels yield distinct series.
func TestSameSeriesSameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_cells_total", "cells", L("kind", "ring"), L("adv", "avoider"))
	b := r.Counter("t_cells_total", "cells", L("adv", "avoider"), L("kind", "ring"))
	if a != b {
		t.Error("same series with reordered labels returned distinct handles")
	}
	other := r.Counter("t_cells_total", "cells", L("kind", "grid"), L("adv", "avoider"))
	if a == other {
		t.Error("distinct label sets share a handle")
	}
}

// TestKindConflictPanics pins that redeclaring a name with a different
// kind is a panic (a programming error), not a silent aliasing.
func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_conflict", "x")
	defer func() {
		if recover() == nil {
			t.Error("redeclaring a counter as a gauge did not panic")
		}
	}()
	r.Gauge("t_conflict", "x")
}

// TestSnapshotMonotonic takes snapshots around concurrent counter
// traffic and checks counters never decrease between snapshots and
// histogram count/sum stay coherent (count*max >= sum).
func TestSnapshotMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_mono_total", "mono")
	h := r.Histogram("t_mono_ns", "mono")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(3)
				}
			}
		}()
	}

	read := func() (cv float64, hc, hs uint64) {
		for _, p := range r.Snapshot() {
			switch p.Name {
			case "t_mono_total":
				cv = p.Value
			case "t_mono_ns":
				hc, hs = p.Count, p.Sum
			}
		}
		return
	}
	prevC, prevHC, _ := read()
	for i := 0; i < 50; i++ {
		cv, hc, hs := read()
		if cv < prevC {
			t.Fatalf("counter went backwards: %v -> %v", prevC, cv)
		}
		if hc < prevHC {
			t.Fatalf("histogram count went backwards: %d -> %d", prevHC, hc)
		}
		if hs > hc*3 {
			t.Fatalf("histogram sum %d exceeds count %d * max observation", hs, hc)
		}
		prevC, prevHC = cv, hc
	}
	close(stop)
	wg.Wait()
}

// TestBuckets pins the power-of-two bucket layout: bits.Len64 indexing
// and the BucketBound bounds it implies.
func TestBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 40, ^uint64(0)} {
		h.Observe(v)
		i := bits.Len64(v)
		if got := h.buckets[i].Load(); got == 0 {
			t.Errorf("Observe(%d) did not land in bucket %d", v, i)
		}
		if v > BucketBound(i) {
			t.Errorf("value %d exceeds BucketBound(%d) = %d", v, i, BucketBound(i))
		}
		if i > 0 && v <= BucketBound(i-1) {
			t.Errorf("value %d within previous bucket bound %d", v, BucketBound(i-1))
		}
	}
	if h.Count() != 11 {
		t.Errorf("count = %d, want 11", h.Count())
	}
}

// TestExpositionGolden is the format golden test: a registry with one
// of each kind (labeled and unlabeled, including a callback-backed
// counter and a label value needing escaping) must render exactly this
// exposition text.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("g_requests_total", "Requests served.").Add(3)
	r.Counter("g_cells_total", "Cells judged.", L("kind", "ring")).Add(2)
	r.Counter("g_cells_total", "Cells judged.", L("kind", `we"ird\`)).Inc()
	r.Gauge("g_inflight", "In-flight sweeps.").Set(-2)
	r.CounterFunc("g_hits_total", "Cache hits.", func() uint64 { return 7 })
	h := r.Histogram("g_wall_ns", "Cell wall time.", L("tier", "batch"))
	h.Observe(0)
	h.Observe(1)
	h.Observe(5) // bucket 3, le 7
	h.Observe(5)

	const want = `# HELP g_cells_total Cells judged.
# TYPE g_cells_total counter
g_cells_total{kind="ring"} 2
g_cells_total{kind="we\"ird\\"} 1
# HELP g_hits_total Cache hits.
# TYPE g_hits_total counter
g_hits_total 7
# HELP g_inflight In-flight sweeps.
# TYPE g_inflight gauge
g_inflight -2
# HELP g_requests_total Requests served.
# TYPE g_requests_total counter
g_requests_total 3
# HELP g_wall_ns Cell wall time.
# TYPE g_wall_ns histogram
g_wall_ns_bucket{tier="batch",le="0"} 1
g_wall_ns_bucket{tier="batch",le="1"} 2
g_wall_ns_bucket{tier="batch",le="3"} 2
g_wall_ns_bucket{tier="batch",le="7"} 4
g_wall_ns_bucket{tier="batch",le="+Inf"} 4
g_wall_ns_sum{tier="batch"} 11
g_wall_ns_count{tier="batch"} 4
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExpositionNoDuplicateSeries mirrors the CI grammar check: no
// series line (name+labels) may appear twice, and every sample line
// must belong to a family introduced by HELP+TYPE.
func TestExpositionNoDuplicateSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("d_a_total", "a").Inc()
	r.Counter("d_a_total", "a", L("x", "1")).Inc()
	r.Gauge("d_b", "b").Set(1)
	r.Histogram("d_c_ns", "c").Observe(9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		key := line[:strings.LastIndexByte(line, ' ')]
		if seen[key] {
			t.Errorf("duplicate series %q", key)
		}
		seen[key] = true
	}
}

// TestRecordPathAllocs pins the tentpole's core claim mechanically:
// zero allocations on every record-path method. The methods are
// //rvlint:hotpath-annotated, so the static analyzer enforces the same
// invariant at lint time; this pins it at run time.
func TestRecordPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_ops_total", "ops")
	g := r.Gauge("a_inflight", "inflight")
	h := r.Histogram("a_ns", "ns")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(4)
		g.Add(-1)
		h.Observe(17)
		h.ObserveSince(Now() - 100)
	}); n != 0 {
		t.Errorf("record path allocates %v/op, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}
