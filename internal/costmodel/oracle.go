package costmodel

import (
	"fmt"
	"math/big"
)

// This file exports the cost bounds of the paper as machine-checkable
// oracle predicates: campaign sweeps (internal/campaign) evaluate every
// run against them, so the Theorem 3.1 guarantee is verified on every
// generated scenario instead of a handful of hand-picked ones.

// NewFromLengths returns a Model over the concrete measured lengths of
// an exploration-sequence catalog (uxs.Catalog.P fits the signature).
// This is how per-run oracles bind the symbolic recurrences to the
// catalog an engine actually executed with.
func NewFromLengths(p func(k int) int) *Model {
	return New(func(k int) *big.Int {
		if k < 1 {
			k = 1
		}
		return big.NewInt(int64(p(k)))
	})
}

// WithinPi reports whether an observed cost respects the Theorem 3.1
// guarantee Π(n, mLen) for graph size n and shorter-label length mLen.
// It applies both to an agent's own traversal count and to the total
// meeting cost (either agent's traversals are individually bounded by Π,
// and the recorded meeting cost is the sum of two such counts, bounded
// by 2Π; the stricter single-agent form is used for per-agent accounts).
func (m *Model) WithinPi(n, mLen int, cost int64) bool {
	if cost < 0 {
		return false
	}
	return big.NewInt(cost).Cmp(m.Pi(n, mLen)) <= 0
}

// WithinPiTotal reports whether a total (two-agent) meeting cost respects
// 2·Π(n, mLen).
func (m *Model) WithinPiTotal(n, mLen int, cost int64) bool {
	if cost < 0 {
		return false
	}
	bound := new(big.Int).Lsh(m.Pi(n, mLen), 1)
	return big.NewInt(cost).Cmp(bound) <= 0
}

// WithinBaseline reports whether a total meeting cost of the exponential
// comparator respects its own bound BaselineTotal(n, l1, l2). Label
// values beyond the BaselineCost materialization cap are rejected rather
// than evaluated.
func (m *Model) WithinBaseline(n int, l1, l2 uint64, cost int64) (bool, error) {
	if l1 > 1<<20 || l2 > 1<<20 {
		return false, fmt.Errorf("costmodel: baseline oracle caps label values at 2^20 (got %d, %d)", l1, l2)
	}
	if cost < 0 {
		return false, nil
	}
	return big.NewInt(cost).Cmp(m.BaselineTotal(n, l1, l2)) <= 0, nil
}

// PiSlackLog2 returns log2(Π(n, mLen)) - log2(cost): how much head-room
// an observed cost left under the guarantee, in bits — the slack
// quantity for slope/table rendering, alongside ApproxLog2.
func (m *Model) PiSlackLog2(n, mLen int, cost int64) float64 {
	if cost < 1 {
		cost = 1
	}
	return ApproxLog2(m.Pi(n, mLen)) - ApproxLog2(big.NewInt(cost))
}

// LemmasHold reports whether every counting inequality of Lemmas 3.2-3.6
// and Theorem 3.1 holds at graph size n and modified-label length l
// (l = ModifiedLen(mLen) >= 4). It is CheckLemmas collapsed to the
// verdict campaign oracles need, with the first failing inequality named.
func (m *Model) LemmasHold(n, l int) (bool, string) {
	for _, iq := range m.CheckLemmas(n, l) {
		if !iq.Holds {
			return false, iq.Name
		}
	}
	return true, ""
}
