package costmodel

import (
	"math/big"
	"testing"
)

func TestESSTCostBoundByHand(t *testing.T) {
	m := New(PPoly(1, 0)) // P(k) = 1
	// Per phase: 4*1 + (1+1)*2*1 = 8. Phases 3,6,9 -> 24.
	if got := m.ESSTCostBound(9); got.Int64() != 24 {
		t.Errorf("ESSTCostBound(9) = %v, want 24", got)
	}
	if got := m.ESSTCostBound(2); got.Sign() != 0 {
		t.Errorf("ESSTCostBound(2) = %v, want 0", got)
	}
}

func TestTESSTMonotone(t *testing.T) {
	m := New(PLinear(2))
	prev := big.NewInt(-1)
	for n := 2; n <= 12; n++ {
		cur := m.TESST(n)
		if cur.Cmp(prev) <= 0 {
			t.Fatalf("TESST not increasing at n=%d", n)
		}
		prev = cur
	}
}

func TestEUpperDominatesN(t *testing.T) {
	// E(n) must be a valid size upper bound: E(n) >= n.
	m := New(PLinear(1))
	for n := 2; n <= 10; n++ {
		if m.EUpper(n).Cmp(big.NewInt(int64(n))) < 0 {
			t.Errorf("EUpper(%d) = %v < n", n, m.EUpper(n))
		}
	}
}

func TestSGLAgentCostBoundComposition(t *testing.T) {
	m := New(PLinear(1))
	n, mLen := 3, 2
	got := m.SGLAgentCostBound(n, mLen)
	// Must strictly dominate each constituent.
	for name, part := range map[string]*big.Int{
		"Pi(n,m)":    m.Pi(n, mLen),
		"2*T(ESST)":  new(big.Int).Lsh(m.TESST(n), 1),
		"Pi(E(n),m)": m.Pi(int(m.EUpper(n).Int64()), mLen),
	} {
		if got.Cmp(part) <= 0 {
			t.Errorf("SGL bound %v does not dominate %s = %v", got, name, part)
		}
	}
}

func TestSGLTotalScalesWithK(t *testing.T) {
	m := New(PLinear(1))
	per := m.SGLAgentCostBound(2, 1)
	team := m.SGLTotalCostBound(2, 1, 5)
	want := new(big.Int).Mul(per, big.NewInt(5))
	if team.Cmp(want) != 0 {
		t.Errorf("team bound %v, want %v", team, want)
	}
}

func TestSGLBoundPanicsOnHugeE(t *testing.T) {
	m := New(PPoly(1, 3)) // cubic P makes E(n) astronomically large
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unevaluatable Pi(E(n), m)")
		}
	}()
	m.SGLAgentCostBound(50, 4)
}

func TestBaselineLog2MatchesExact(t *testing.T) {
	m := New(PLinear(1))
	for _, l := range []uint64{1, 3, 10, 100} {
		exact := ApproxLog2(m.BaselineCost(3, l))
		fast := m.BaselineLog2(3, l)
		if diff := exact - fast; diff > 0.01 || diff < -0.01 {
			t.Errorf("label %d: exact log2 %.4f vs fast %.4f", l, exact, fast)
		}
	}
}

func TestBaselineCostCapPanics(t *testing.T) {
	m := New(PLinear(1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for gigantic label value")
		}
	}()
	m.BaselineCost(3, 1<<30)
}
