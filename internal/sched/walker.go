package sched

import "meetpoly/internal/trajectory"

// Walker adapts a trajectory.Stepper to a sched.Agent: the standard shape
// of a rendezvous agent, which follows a predetermined (label-dependent)
// trajectory until it meets someone. Decisions depend only on the agent's
// own observations, exactly as the model demands.
type Walker struct {
	// Stepper supplies the route. The Walker halts when it is exhausted.
	Stepper trajectory.Stepper
	// StopAtMeeting halts the walker at the next node decision after a
	// meeting (rendezvous semantics: the task is over).
	StopAtMeeting bool
	// Payload is shared with peers at meetings.
	Payload any

	metCount int
}

var _ Agent = (*Walker)(nil)

// Run implements Agent.
func (w *Walker) Run(p *Proc) {
	obs := p.Obs()
	entry := 0 // fresh-start convention for the trajectory
	for {
		if w.StopAtMeeting && w.metCount > 0 {
			return
		}
		port, ok := w.Stepper.Next(obs.Degree, entry)
		if !ok {
			return
		}
		obs = p.Move(port)
		entry = obs.Entry
	}
}

// Publish implements Agent.
func (w *Walker) Publish() any { return w.Payload }

// OnMeet implements Agent.
func (w *Walker) OnMeet(Encounter) { w.metCount++ }

// Met reports whether the walker has met anyone.
func (w *Walker) Met() bool { return w.metCount > 0 }

// MeetCount returns the number of meetings delivered to this walker.
func (w *Walker) MeetCount() int { return w.metCount }
