package meetpoly

import (
	"context"
	"fmt"

	"meetpoly/internal/sched"
	"meetpoly/internal/telemetry"
	"meetpoly/internal/trajectory"
)

// The batched execution tier of the sweep pipeline.
//
// The per-cell tiers pay a fixed dispatch overhead for every cell:
// runner construction, per-agent state setup, pooled-scratch churn, and
// a scheduler-loop prologue/epilogue — costs that dwarf the per-event
// work for the small cells campaign matrices are made of. The batch
// tier amortizes that overhead: sweep workers receive whole groups of
// cells that share one prepared graph (contiguous under the campaign
// walk's kind→graph→… axis order) and run them as lanes of a single
// sched.BatchRunner, one lockstep scheduler loop advancing every lane.
//
// Equivalence is non-negotiable: a batched sweep must produce the
// byte-identical SweepReport a per-cell sweep produces. Three design
// choices carry that guarantee:
//
//   - each lane gets its own freshly resolved adversary and its own
//     walkers (every builtin strategy is stateful), prepared through
//     the same cache path runCell uses;
//   - a cell the batch path cannot take — unknown kind, no route book,
//     a lane the validator rejects — falls back to runPrepared on the
//     spot, reproducing the per-cell result and error text exactly;
//   - results are lifted through the kind's batchKind hooks plus the
//     same ScenarioRunContext.Finish that every builtin runner reports
//     through, so error strings and Result shapes match field-for-field.
//
// TestSweepBatchedMatchesSequential enforces the guarantee over the
// full builtin kind matrix.

// sweepBatchSize caps how many cells one graph-keyed batch accumulates
// before the producer flushes it to a worker. It bounds both the
// latency until the first results stream out and the per-worker memory
// (lane state is dense: ~2 agent states per cell), while staying large
// enough to amortize the batch setup across hundreds of cells.
const sweepBatchSize = 256

// sweepWork is one unit handed to a sweep worker: either a single cell
// (batch nil) for the per-cell tiers, or a graph-keyed batch for the
// batched tier.
type sweepWork struct {
	cell  SweepCell
	batch []SweepCell
}

// batchKey groups contiguous sweep cells that may share one
// BatchRunner: same kind (hence same lane lowering) and same declared
// graph (hence, through the prepared-scenario cache, the same *Graph).
type batchKey struct {
	kind  string
	graph GraphSpec
}

// batchEligible reports whether this engine's sweeps may use the
// batched tier at all: it requires the prepared cache (lanes share one
// cached *Graph and replay its route book), direct dispatch, no
// observer (the lockstep loop delivers no per-event callbacks), and no
// cell tracer (spans bracket per-cell execution, which lockstep lanes
// don't have; the tier's equivalence guarantee keeps traced results
// identical anyway).
func (e *Engine) batchEligible() bool {
	return e.batchTier && e.usePrepCache && !e.forceBlocking && e.obs == nil && e.cellTrace == nil
}

// batchableKind reports whether the kind declares the batch lowering.
func batchableKind(k ScenarioKind) bool {
	def, ok := lookupScenarioKind(k)
	return ok && def.batch != nil
}

// runCellBatch executes one graph-keyed batch of cells and returns
// their judged results, index-aligned with cells. Cells the batch path
// cannot take are executed per-cell inline, so every cell of the batch
// yields exactly the result runCell would have produced.
func (e *Engine) runCellBatch(ctx context.Context, cells []SweepCell, oracles []SweepOracle) []SweepCellResult {
	if ctx == nil {
		ctx = context.Background()
	}
	var start int64
	if e.tele != nil {
		start = telemetry.Now()
	}
	out := make([]SweepCellResult, len(cells))
	// perCell mirrors runCell's post-prepare sequence for a cell that
	// leaves the batch path.
	perCell := func(i int, cell SweepCell, sc Scenario, br BatchResult, g *Graph, adv Adversary, routes *trajectory.RouteBook) {
		if e.tele != nil {
			e.tele.batchFallback.Inc()
		}
		br.Result, br.Err = e.runPrepared(ctx, sc, g, adv, routes)
		out[i] = e.judge(cell, br, oracles)
	}
	type lane struct {
		i   int // index into cells/out
		idx int // lane index in the batch runner
		sc  Scenario
		br  BatchResult
		def *ScenarioKindDef
	}
	var (
		b     *sched.BatchRunner
		bg    *Graph
		lanes []lane
	)
	for i, cell := range cells {
		sc := CellScenario(cell)
		br := BatchResult{Index: cell.Index, Scenario: sc}
		g, adv, routes, err := e.prepare(sc)
		if err != nil {
			br.Err = err
			out[i] = e.judge(cell, br, oracles)
			continue
		}
		br.Graph = g
		if err := ctx.Err(); err != nil {
			// Mirror runPrepared's pre-run cancellation report exactly.
			br.Err = fmt.Errorf("scenario %q: %w (%w)", sc.Name, ErrCanceled, err)
			out[i] = e.judge(cell, br, oracles)
			continue
		}
		def, ok := lookupScenarioKind(sc.Kind)
		if !ok || def.batch == nil || routes == nil || len(sc.Starts) != 2 ||
			(bg != nil && g != bg) {
			// Defensive: the producer only batches batchable kinds over
			// one graph spec, but an unbatchable straggler must still
			// produce its exact per-cell result.
			perCell(i, cell, sc, br, g, adv, routes)
			continue
		}
		if b == nil {
			nb, err := sched.NewBatchRunner(ctx, g)
			if err != nil {
				perCell(i, cell, sc, br, g, adv, routes)
				continue
			}
			b, bg = nb, g
		}
		wa, wb := def.batch.walkers(e, routes, g, sc)
		idx, err := b.AddLane(sched.LaneConfig{
			Starts:             [2]int{sc.Starts[0], sc.Starts[1]},
			Agents:             [2]sched.Stepper{wa, wb},
			Adversary:          adv,
			MaxSteps:           sc.Budget,
			StopAtFirstMeeting: true,
		})
		if err != nil {
			// A cell the lane validator rejects runs on the reference
			// core, which produces the exact per-cell error and result.
			perCell(i, cell, sc, br, g, adv, routes)
			continue
		}
		lanes = append(lanes, lane{i: i, idx: idx, sc: sc, br: br, def: def})
	}
	if b != nil {
		b.Run()
		for _, lc := range lanes {
			sum := b.Summary(lc.idx)
			res, goalMet := lc.def.batch.result(e, lc.sc, bg, sum)
			rc := &ScenarioRunContext{Context: ctx, Engine: e, Scenario: lc.sc, Graph: bg}
			lc.br.Result = res
			lc.br.Err = rc.Finish(sum, goalMet, lc.def.batch.miss)
			out[lc.i] = e.judge(cells[lc.i], lc.br, oracles)
		}
		b.Close()
	}
	if e.tele != nil {
		e.tele.batchWall.ObserveSince(start)
		e.tele.batchLanes.Observe(uint64(len(lanes)))
		e.tele.batchCells.Add(uint64(len(lanes)))
	}
	return out
}
