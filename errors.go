package meetpoly

import "meetpoly/internal/rverr"

// Typed sentinel errors. Every error returned by the Engine (and by the
// deprecated free functions) that falls into one of these classes wraps
// the corresponding sentinel, so callers dispatch with errors.Is
// regardless of which internal layer produced the failure:
//
//	res, err := eng.Run(ctx, sc)
//	switch {
//	case errors.Is(err, meetpoly.ErrBudgetExhausted): // raise sc.Budget
//	case errors.Is(err, meetpoly.ErrCanceled):        // ctx was canceled
//	case errors.Is(err, meetpoly.ErrInvalidScenario): // fix the descriptor
//	case errors.Is(err, meetpoly.ErrCatalogUncovered):// extend the catalog
//	}
var (
	// ErrBudgetExhausted: the run stopped at its event budget before
	// reaching its goal (meeting, coverage, or full SGL output). The
	// partial result is still returned alongside the error.
	ErrBudgetExhausted = rverr.ErrBudgetExhausted

	// ErrInvalidScenario: the scenario (or legacy call) violates the
	// model — duplicate starts, non-positive or equal labels, unknown
	// kinds, malformed adversary specs, out-of-range nodes.
	ErrInvalidScenario = rverr.ErrInvalidScenario

	// ErrCatalogUncovered: the engine's verified catalog does not cover
	// the scenario's graph and WithAutoExtend(false) is in effect.
	ErrCatalogUncovered = rverr.ErrCatalogUncovered

	// ErrCanceled: the context was canceled mid-run. Errors wrapping
	// this sentinel also wrap the context's own error, so both
	// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled)
	// hold.
	ErrCanceled = rverr.ErrCanceled
)
