package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"meetpoly"
	"meetpoly/internal/buildinfo"
	"meetpoly/internal/campaign"
	"meetpoly/internal/faultinject"
	"meetpoly/internal/telemetry"
	"meetpoly/internal/telemetry/logx"
)

// Config configures a sweep service instance.
type Config struct {
	// Engine executes every campaign. Many tenants multiplex over this
	// one engine: its prepared-scenario cache and worker pool are shared
	// state, which is safe because preparation is keyed on content and
	// execution is pure.
	Engine *meetpoly.Engine

	// CheckpointRoot is the directory under which per-campaign,
	// per-shard checkpoints live (root/<campaign key>/shard-<i>of<n>).
	// Empty disables checkpointing: every request recomputes.
	CheckpointRoot string

	// Shard / Of select which slice of each campaign this instance
	// executes (the same flag pair cmd/rvserved exposes); zero values
	// mean "shard 0 of 1", i.e. the whole expansion.
	Shard, Of int

	// FlushEvery is the checkpoint flush interval in completed cells
	// (DefaultFlushEvery when <= 0).
	FlushEvery int

	// MaxCells rejects campaigns whose expansion exceeds it with 413
	// (0 = unlimited). This is the admission-control half of the budget
	// story; the duration half is RequestTimeout.
	MaxCells int

	// MaxTenantSweeps caps in-flight sweeps per tenant (X-Tenant header,
	// "default" when absent); excess requests get 429. <= 0 means
	// DefaultMaxTenantSweeps.
	MaxTenantSweeps int

	// RequestTimeout bounds each sweep's wall clock (0 = unbounded). A
	// request may tighten it further with ?budget_ms=. Either way the
	// budget maps onto context cancellation: expired runs surface
	// canceled cells, and canceled cells are never checkpointed, so a
	// re-request resumes and finishes the remainder.
	RequestTimeout time.Duration

	// RetryAfter is the hint sent in the Retry-After header of every
	// 429 (tenant over quota) and 503 (draining, chaos-unavailable)
	// response, so backoff-aware clients wait what the server asks
	// instead of guessing. <= 0 means DefaultRetryAfter.
	RetryAfter time.Duration

	// Faults threads the chaos harness through the service (rvserved
	// -chaos): checkpoint write/fsync faults and worker kills via
	// RunShard, stream resets after the scheduled NDJSON line, delayed
	// responses and 503 bursts at the request boundary. Nil injects
	// nothing.
	Faults *faultinject.Injector

	// Metrics is the registry the service records into and GET /metrics
	// renders: request counts and latencies, stream lines, refusals by
	// status, checkpoint flush/fsync cost, and — because /v1/stats reads
	// the same handles — the served/inflight counters. Share it with
	// the engine (meetpoly.WithTelemetry) so one exposition covers both
	// layers. Nil gets a private registry: /metrics and /v1/stats work
	// either way.
	Metrics *meetpoly.Metrics

	// Log receives the service's structured log lines (admissions
	// refused, sweeps completed, drain progress). Nil logs nothing.
	Log *logx.Logger

	// Pprof mounts net/http/pprof's profiling endpoints under
	// /debug/pprof/ (rvserved -pprof). Off by default: profiling
	// endpoints expose stacks and heap contents, so enabling them is an
	// explicit operator decision.
	Pprof bool
}

// DefaultRetryAfter is the Retry-After hint when Config.RetryAfter is
// unset.
const DefaultRetryAfter = time.Second

// DefaultMaxTenantSweeps is the per-tenant in-flight cap when
// Config.MaxTenantSweeps is unset.
const DefaultMaxTenantSweeps = 4

// Server is the HTTP face of the sweep service. Zero value is not
// usable; construct with New.
type Server struct {
	cfg Config

	drainCtx    context.Context
	startDrain  context.CancelFunc
	inflight    sync.WaitGroup
	mu          sync.Mutex
	draining    bool
	tenants     map[string]int  // tenant -> in-flight sweeps
	runningDirs map[string]bool // checkpoint keys with a live run

	// The served/inflight tallies live in telemetry handles, not fields:
	// /v1/stats and /metrics read the same counters, so the two views
	// cannot drift (DESIGN.md §7).
	reg *meetpoly.Metrics
	m   *serveMetrics
	log *logx.Logger
}

// New builds a Server over cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Of == 0 && cfg.Shard == 0 {
		cfg.Of = 1
	}
	if cfg.MaxTenantSweeps <= 0 {
		cfg.MaxTenantSweeps = DefaultMaxTenantSweeps
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Metrics == nil {
		cfg.Metrics = meetpoly.NewMetrics()
	}
	drainCtx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:         cfg,
		drainCtx:    drainCtx,
		startDrain:  cancel,
		tenants:     make(map[string]int),
		runningDirs: make(map[string]bool),
		reg:         cfg.Metrics,
		m:           newServeMetrics(cfg.Metrics),
		log:         cfg.Log,
	}
}

// Handler returns the service's route table:
//
//	POST /v1/sweep        — stream the shard's cell results as NDJSON
//	POST /v1/sweep/report — run the shard, respond with the report JSON
//	GET  /healthz         — 200 ok (with the build version), 503 once draining
//	GET  /v1/stats        — service counters and engine cache stats
//	GET  /metrics         — the registry in Prometheus text exposition
//	GET  /debug/pprof/*   — net/http/pprof, only with Config.Pprof
//
// Both sweep endpoints take a SweepSpec JSON body and accept
// ?budget_ms= to bound the run (see Config.RequestTimeout) and
// ?ranges=lo-hi[,lo-hi...] to execute only those absolute cell index
// intervals (intersected with this instance's shard range) — the
// resume primitive a reconnecting client requests its gap set with.
//
// With a fault injector configured, requests pass its schedule first:
// delayed responses and 503 bursts land here, stream resets inside
// handleSweep.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sweep", func(w http.ResponseWriter, r *http.Request) { s.handleSweep(w, r, true) })
	mux.HandleFunc("/v1/sweep/report", func(w http.ResponseWriter, r *http.Request) { s.handleSweep(w, r, false) })
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.cfg.Pprof {
		// Mounted explicitly rather than by importing net/http/pprof for
		// side effect: the side-effect registration lands on
		// http.DefaultServeMux, which this server does not use.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if s.cfg.Faults == nil {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		delay, unavailable := s.cfg.Faults.OnRequest()
		if delay > 0 {
			time.Sleep(delay)
		}
		if unavailable {
			s.refuse(w, "chaos: injected unavailability", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// refuse writes a load-shedding refusal (429/503) with the Retry-After
// hint, so a backoff-aware client waits what the server asks.
func (s *Server) refuse(w http.ResponseWriter, msg string, code int) {
	s.m.refused(code)
	s.log.Warn("request refused", logx.F("code", code), logx.F("reason", msg))
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, msg, code)
}

// Drain makes the server refuse new sweeps, cancels the ones in flight
// (their checkpoints flush everything completed so far, so a restarted
// instance resumes rather than recomputes), and waits for them to
// finish or ctx to expire.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.log.Info("draining", logx.F("inflight", s.m.inflight.Value()))
	s.startDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.refuse(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// The build identity rides on the health line (and on /metrics as
	// the build-info gauge), so a fleet's versions are one probe away.
	fmt.Fprintf(w, "ok %s %s\n", buildinfo.Version, buildinfo.Revision())
}

// handleMetrics renders the registry in Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // a failed scrape write has no recovery
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	// served/inflight read the same telemetry handles /metrics renders,
	// and the cache numbers decode the engine's packed counter word both
	// views report — the stats blob is a projection of the telemetry
	// snapshot, never a parallel tally that could drift from it.
	st := struct {
		Draining bool                `json:"draining"`
		Shard    int                 `json:"shard"`
		Of       int                 `json:"of"`
		Served   int64               `json:"served"`
		Inflight int                 `json:"inflight"`
		Cache    meetpoly.CacheStats `json:"cache"`
	}{draining, s.cfg.Shard, s.cfg.Of,
		int64(s.m.served.Value()), int(s.m.inflight.Value()), s.cfg.Engine.CacheStats()}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// admit performs admission control for one sweep request: drain check,
// per-tenant quota, and the one-live-run-per-checkpoint-dir lock. It
// returns the release func, or writes the refusal and returns nil.
func (s *Server) admit(w http.ResponseWriter, tenant, key string) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.draining:
		s.refuse(w, "draining", http.StatusServiceUnavailable)
		return nil
	case s.tenants[tenant] >= s.cfg.MaxTenantSweeps:
		s.refuse(w, fmt.Sprintf("tenant %q at in-flight limit %d", tenant, s.cfg.MaxTenantSweeps), http.StatusTooManyRequests)
		return nil
	case key != "" && s.runningDirs[key]:
		// Two concurrent runs over one checkpoint dir would interleave
		// appends; the second caller retries after the first finishes.
		s.m.refused(http.StatusConflict)
		s.log.Warn("campaign already running", logx.F("tenant", tenant), logx.F("campaign", key))
		http.Error(w, fmt.Sprintf("campaign %s already running on this shard", key), http.StatusConflict)
		return nil
	}
	s.tenants[tenant]++
	if key != "" {
		s.runningDirs[key] = true
	}
	s.inflight.Add(1)
	s.m.inflight.Add(1)
	return func() {
		s.mu.Lock()
		s.tenants[tenant]--
		if s.tenants[tenant] == 0 {
			delete(s.tenants, tenant)
		}
		if key != "" {
			delete(s.runningDirs, key)
		}
		s.mu.Unlock()
		s.m.inflight.Add(-1)
		s.m.served.Inc()
		s.inflight.Done()
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request, stream bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a SweepSpec JSON body", http.StatusMethodNotAllowed)
		return
	}
	reqStart := telemetry.Now()
	if stream {
		s.m.sweepReqs.Inc()
		defer s.m.sweepNs.ObserveSince(reqStart)
	} else {
		s.m.reportReqs.Inc()
		defer s.m.reportNs.ObserveSince(reqStart)
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := meetpoly.SweepSpecFromJSON(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	total, err := meetpoly.CountSweep(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.cfg.MaxCells > 0 && total > s.cfg.MaxCells {
		s.m.refused(http.StatusRequestEntityTooLarge)
		s.log.Warn("campaign over cell limit", logx.F("cells", total), logx.F("limit", s.cfg.MaxCells))
		http.Error(w, fmt.Sprintf("campaign expands to %d cells, limit %d", total, s.cfg.MaxCells), http.StatusRequestEntityTooLarge)
		return
	}

	ranges, err := parseRanges(r.URL.Query().Get("ranges"), total)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	dir, key := s.checkpointDir(spec)
	release := s.admit(w, tenant, key)
	if release == nil {
		return
	}
	defer release()

	// The request budget is context cancellation all the way down: the
	// client's disconnect, the server's timeout, the request's own
	// ?budget_ms= and a drain all cancel the same ctx, and the engine
	// already turns cancellation into canceled cell outcomes.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopAfter := context.AfterFunc(s.drainCtx, cancel)
	defer stopAfter()
	budget := s.cfg.RequestTimeout
	if ms := r.URL.Query().Get("budget_ms"); ms != "" {
		d, err := strconv.Atoi(ms)
		if err != nil || d <= 0 {
			http.Error(w, "budget_ms must be a positive integer", http.StatusBadRequest)
			return
		}
		if req := time.Duration(d) * time.Millisecond; budget == 0 || req < budget {
			budget = req
		}
	}
	if budget > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, budget)
		defer tcancel()
	}

	cfg := ShardConfig{
		Engine: s.cfg.Engine, Spec: spec,
		Shard: s.cfg.Shard, Of: s.cfg.Of,
		Ranges: ranges,
		Dir:    dir, FlushEvery: s.cfg.FlushEvery,
		Faults:  s.cfg.Faults,
		Metrics: s.reg,
	}
	log := s.log.With(logx.F("tenant", tenant), logx.F("campaign", spec.Name),
		logx.F("shard", fmt.Sprintf("%d/%d", s.cfg.Shard, s.cfg.Of)))
	log.Debug("sweep admitted", logx.F("cells", total), logx.F("stream", stream))

	if !stream {
		rep, err := RunShard(ctx, cfg, func(meetpoly.SweepCellResult) bool { return true })
		if err != nil {
			log.Error("sweep failed", logx.F("err", err))
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// Byte-for-byte the `rvsweep -json` encoding, so a served report
		// diffs clean against a local run of the same campaign.
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(out, '\n'))
		log.Info("sweep served", logx.F("cells", rep.Cells), logx.F("failures", rep.Fail))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	wrote := false
	rep, err := RunShard(ctx, cfg, func(cr meetpoly.SweepCellResult) bool {
		if err := enc.Encode(cr); err != nil {
			return false // client went away; RunShard returns ErrStopped
		}
		wrote = true
		s.m.streamLines.Inc()
		if flusher != nil {
			flusher.Flush()
		}
		if s.cfg.Faults.OnStreamLine() {
			// The scheduled mid-NDJSON connection cut: ErrAbortHandler
			// aborts the connection without a response trailer, exactly
			// what a network partition looks like to the client. The
			// panic unwinds through RunShard, so the checkpoint's
			// deferred Close still flushes — a reset loses the
			// connection, never durable server state.
			panic(http.ErrAbortHandler)
		}
		return true
	})
	// The stream ends with exactly one trailer line so clients can tell
	// a complete campaign from a truncated one.
	switch {
	case err == nil:
		enc.Encode(streamTrailer{Done: true, Cells: rep.Cells, Failures: rep.Fail, Canceled: rep.Canc})
		log.Info("sweep streamed", logx.F("cells", rep.Cells), logx.F("failures", rep.Fail))
	case errors.Is(err, ErrStopped):
		// Nobody is listening.
		log.Info("stream consumer went away")
	case !wrote:
		log.Error("sweep failed", logx.F("err", err))
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		log.Error("sweep failed mid-stream", logx.F("err", err))
		enc.Encode(streamTrailer{Error: err.Error()})
	}
}

// streamTrailer is the final line of a /v1/sweep NDJSON stream.
type streamTrailer struct {
	Done     bool   `json:"done"`
	Cells    int    `json:"cells"`
	Failures int    `json:"failures"`
	Canceled int    `json:"canceled"`
	Error    string `json:"error,omitempty"`
}

// parseRanges parses the ?ranges=lo-hi[,lo-hi...] query parameter into
// cell index intervals: each half-open [lo, hi) needs 0 <= lo < hi <=
// total. Empty input means "the whole shard range" (nil).
func parseRanges(q string, total int) ([]campaign.Interval, error) {
	if q == "" {
		return nil, nil
	}
	var out []campaign.Interval
	for _, part := range strings.Split(q, ",") {
		lostr, histr, ok := strings.Cut(part, "-")
		if !ok {
			return nil, fmt.Errorf("ranges: %q is not lo-hi", part)
		}
		lo, err1 := strconv.Atoi(lostr)
		hi, err2 := strconv.Atoi(histr)
		if err1 != nil || err2 != nil || lo < 0 || hi <= lo || hi > total {
			return nil, fmt.Errorf("ranges: %q must satisfy 0 <= lo < hi <= %d", part, total)
		}
		out = append(out, campaign.Interval{Lo: lo, Hi: hi})
	}
	return out, nil
}

// checkpointDir maps a campaign onto this shard's checkpoint directory:
// root/<name>-<fnv of the canonical spec JSON>/shard-<i>of<n>. The hash
// keeps two different campaigns sharing a name from sharing (and
// corrupting) a resume state; the name keeps the tree navigable. The
// returned key identifies the dir for the one-live-run lock. Both are
// empty when checkpointing is disabled.
func (s *Server) checkpointDir(spec meetpoly.SweepSpec) (dir, key string) {
	if s.cfg.CheckpointRoot == "" {
		return "", ""
	}
	canon, _ := json.Marshal(spec)
	h := fnv.New32a()
	h.Write(canon)
	name := make([]byte, 0, len(spec.Name))
	for _, c := range []byte(spec.Name) {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			name = append(name, c)
		default:
			name = append(name, '_')
		}
	}
	key = fmt.Sprintf("%s-%08x", name, h.Sum32())
	return filepath.Join(s.cfg.CheckpointRoot, key, fmt.Sprintf("shard-%dof%d", s.cfg.Shard, s.cfg.Of)), key
}
