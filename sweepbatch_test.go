package meetpoly

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestSweepBatchedMatchesSequential is the batched tier's acceptance
// gate: the same campaign, spanning every builtin kind, must produce a
// byte-identical SweepReport whether the cells run as shared-graph
// batch lanes (the default) or per cell through the reference core.
// The batch tier is an amortization of per-cell dispatch overhead, not
// an approximation of execution — down to error strings and oracle
// verdicts.
func TestSweepBatchedMatchesSequential(t *testing.T) {
	spec := cacheTestSpec()
	spec.Kinds = []string{"rendezvous", "baseline", "esst", "sgl", "certify"}
	spec.Budget = 40_000

	batched, err := NewEngine().Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := NewEngine(WithBatchedExecution(false)).Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	jb, js := mustJSON(t, batched), mustJSON(t, sequential)
	if !bytes.Equal(jb, js) {
		t.Fatalf("batched and sequential sweep reports differ:\nbatched:    %s\nsequential: %s", jb, js)
	}
	if !batched.OK() {
		t.Fatalf("sweep failed oracles:\n%s", batched.Table())
	}
}

// TestBatchTierPreconditions pins when the batched tier engages: on by
// default, and disabled by exactly the configurations whose semantics
// it cannot reproduce (no prepared cache to share graphs through,
// blocking dispatch, an attached observer) or by the explicit opt-out.
func TestBatchTierPreconditions(t *testing.T) {
	if !NewEngine().batchEligible() {
		t.Error("default engine: batch tier should be eligible")
	}
	offs := map[string]*Engine{
		"batched off":   NewEngine(WithBatchedExecution(false)),
		"cache off":     NewEngine(WithPreparedCache(false)),
		"blocking":      NewEngine(WithDirectDispatch(false)),
		"with observer": NewEngine(WithObserver(&FuncObserver{})),
		"with tracer":   NewEngine(WithCellTrace(func(CellTraceEvent) {})),
	}
	for name, e := range offs {
		if e.batchEligible() {
			t.Errorf("%s: batch tier should not be eligible", name)
		}
	}
	for kind, want := range map[ScenarioKind]bool{
		ScenarioRendezvous: true,
		ScenarioBaseline:   true,
		ScenarioESST:       false,
		ScenarioSGL:        false,
		ScenarioCertify:    false,
		"no-such-kind":     false,
	} {
		if got := batchableKind(kind); got != want {
			t.Errorf("batchableKind(%q) = %v, want %v", kind, got, want)
		}
	}
}

// TestRunCellBatchMixedFallback feeds runCellBatch a deliberately
// mis-grouped batch — every kind, two different graphs, in one slice —
// and checks each cell still yields exactly the result runCell
// produces: unbatchable kinds and graph-mismatched cells must take the
// per-cell fallback with identical outcomes.
func TestRunCellBatchMixedFallback(t *testing.T) {
	spec := cacheTestSpec()
	spec.Kinds = []string{"rendezvous", "baseline", "esst", "sgl", "certify"}
	spec.StartPairs = 1
	spec.Budget = 20_000
	cells, _, err := ExpandSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	eng.sweepPrepass(spec)
	got := eng.runCellBatch(context.Background(), cells, nil)
	if len(got) != len(cells) {
		t.Fatalf("runCellBatch returned %d results for %d cells", len(got), len(cells))
	}
	ref := NewEngine()
	ref.sweepPrepass(spec)
	for i, cell := range cells {
		want := ref.runCell(context.Background(), cell, nil)
		jg, jw := mustJSON(t, got[i]), mustJSON(t, want)
		if !bytes.Equal(jg, jw) {
			t.Errorf("cell %d (%s): batch path diverges from runCell:\nbatch:   %s\nrunCell: %s",
				i, cell.ID, jg, jw)
		}
	}
}

// TestCacheStatsConsistentSnapshot is the satellite-1 regression test:
// CacheStats must return a (Hits, Misses) pair that held at a single
// instant. Workers alternate one guaranteed hit with one guaranteed
// miss, so at any instant the two counters differ by at most the
// worker count (plus the one warming miss); a snapshot torn across two
// independent loads — the old implementation — lets an arbitrary
// number of operations land between reading Hits and reading Misses
// and shows up here as a wider gap. Run under -race this also proves
// the counter path is data-race free.
func TestCacheStatsConsistentSnapshot(t *testing.T) {
	eng := NewEngine()
	warm := GraphSpec{Kind: "ring", N: 5}
	eng.preparedFor(warm) // miss #0: every later lookup of warm is a hit
	const workers = 8
	const iters = 200

	var wg sync.WaitGroup
	done := make(chan struct{})
	errs := make(chan string, 1)
	for r := 0; r < 2; r++ {
		go func() {
			for {
				select {
				case <-done:
					return
				default:
				}
				st := eng.CacheStats()
				// Hits lag Misses by the warming miss; beyond that the
				// alternation bounds the gap by the worker count.
				if d := st.Misses - 1 - st.Hits; d < -workers || d > workers {
					select {
					case errs <- fmt.Sprintf("Hits=%d Misses=%d", st.Hits, st.Misses):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				eng.preparedFor(warm) // hit
				// A unique spec per (worker, iteration): a guaranteed miss.
				eng.preparedFor(GraphSpec{Kind: "ring", N: 100 + w*iters + i})
			}
		}(w)
	}
	wg.Wait()
	close(done)
	select {
	case msg := <-errs:
		t.Fatalf("torn cache-stats snapshot observed: %s", msg)
	default:
	}
	st := eng.CacheStats()
	if st.Hits != workers*iters || st.Misses != workers*iters+1 {
		t.Fatalf("final stats %+v, want Hits=%d Misses=%d", st, workers*iters, workers*iters+1)
	}
}
