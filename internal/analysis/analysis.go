// Package analysis is rvlint: a go/analysis suite that mechanically
// enforces the engine's correctness conventions. Every invariant here
// exists because one nondeterministic or aliasing code path silently
// breaks replayability — the property the whole oracle pipeline, the
// golden report and every differential test stand on.
//
// The five analyzers and the invariants they guard:
//
//   - determinism: result-producing packages must not consult wall
//     clocks, the global math/rand source, or map iteration order, and
//     must not format raw pointers into report strings. Per-cell results
//     are pure functions of the seed string "<seed>#<index>" (PR 2).
//   - viewretain: an adversary must not retain the scheduler's reused
//     sched.View buffer (or anything reachable from it) beyond one Next
//     call (PR 3/4's allocation-free view contract).
//   - hotalloc: functions annotated //rvlint:hotpath must contain no
//     allocation sources, guarding the ~17ns/0.002-allocs half-step
//     floor at review time, not only via rvbench -check.
//   - registrypure: registry mutation happens only at init/package-var
//     time, and graph-kind Build implementations are free of global
//     mutable state, so registry fingerprints content-address the
//     prepared-scenario cache soundly (PR 5).
//   - snapshot: copy-on-write atomic-snapshot state (a struct pairing a
//     writer sync.Mutex with an atomic.Pointer snapshot, like
//     uxs.Verified and trajectory.Route) is published only under the
//     writer mutex, and pure read paths acquire no lock.
//
// A diagnostic can be suppressed with a
//
//	//lint:allow <rule>
//
// comment on the flagged line or the line directly above it; the rule
// name is the analyzer name. Suppressions are deliberate, reviewed
// exceptions — each one should say why in a trailing comment.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// All returns the full rvlint analyzer suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DeterminismAnalyzer,
		ViewRetainAnalyzer,
		HotAllocAnalyzer,
		RegistryPureAnalyzer,
		SnapshotAnalyzer,
	}
}

// allowIndex records, per file and line, the rules suppressed by
// //lint:allow comments.
type allowIndex map[*token.File]map[int][]string

// buildAllowIndex scans every comment in the pass for lint:allow
// directives.
func buildAllowIndex(pass *analysis.Pass) allowIndex {
	idx := make(allowIndex)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow ")
				if !ok {
					continue
				}
				tf := pass.Fset.File(c.Pos())
				if tf == nil {
					continue
				}
				lines := idx[tf]
				if lines == nil {
					lines = make(map[int][]string)
					idx[tf] = lines
				}
				line := tf.Line(c.Pos())
				for _, rule := range strings.Fields(text) {
					lines[line] = append(lines[line], rule)
				}
			}
		}
	}
	return idx
}

// allowed reports whether rule is suppressed at pos: a //lint:allow on
// the same line or the line immediately above.
func (idx allowIndex) allowed(fset *token.FileSet, pos token.Pos, rule string) bool {
	tf := fset.File(pos)
	if tf == nil {
		return false
	}
	lines := idx[tf]
	if lines == nil {
		return false
	}
	line := tf.Line(pos)
	for _, l := range [2]int{line, line - 1} {
		for _, r := range lines[l] {
			if r == rule {
				return true
			}
		}
	}
	return false
}

// reportfer is the reporting surface the per-construct checks need;
// implemented by *reporter and by wrappers that decorate messages.
type reportfer interface {
	reportf(pos token.Pos, format string, args ...any)
}

// reporter wraps pass.Reportf with lint:allow suppression for one rule.
type reporter struct {
	pass  *analysis.Pass
	rule  string
	allow allowIndex
}

func newReporter(pass *analysis.Pass, rule string) *reporter {
	return &reporter{pass: pass, rule: rule, allow: buildAllowIndex(pass)}
}

func (r *reporter) reportf(pos token.Pos, format string, args ...any) {
	if r.allow.allowed(r.pass.Fset, pos, r.rule) {
		return
	}
	r.pass.Reportf(pos, format, args...)
}

// calleeFunc resolves the called function or method of a call, nil for
// builtins, conversions and dynamic calls through func values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, _ := typeutil.Callee(info, call).(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function
// pkgpath.name (methods never match).
func isPkgFunc(fn *types.Func, pkgpath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgpath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == name
}

// namedIn reports whether t (after unaliasing and pointer-stripping) is
// a named type called typeName defined in a package named pkgName. The
// match is by package *name*, not path, so analysistest fixtures can
// stand in their own stub packages for internal ones.
func namedIn(t types.Type, pkgName, typeName string) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// inTestFile reports whether pos lies in a _test.go file.
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	tf := fset.File(pos)
	return tf != nil && strings.HasSuffix(tf.Name(), "_test.go")
}

// funcHasDirective reports whether the function declaration carries the
// given //rvlint: directive in its doc comment.
func funcHasDirective(decl *ast.FuncDecl, directive string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.TrimSpace(c.Text) == "//"+directive {
			return true
		}
	}
	return false
}

// rootIdent returns the leftmost identifier of a selector/index/star
// chain (x in x.f[i].g), or nil when the chain roots in a call or
// literal.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
