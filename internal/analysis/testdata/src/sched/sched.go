// Package sched is a stub of the real scheduler for the viewretain
// fixtures: the analyzer matches View by package and type name, so this
// stands in for meetpoly/internal/sched.
package sched

// Event mirrors the real adversary event.
type Event struct {
	Kind  int
	Agent int
}

// View mirrors the real reused view buffer: a scalar field, a
// reference-typed field, and accessor methods returning copies.
type View struct {
	Steps  int
	Agents []int
}

func (v *View) K() int                { return len(v.Agents) }
func (v *View) CanAdvance(i int) bool { return v.Agents[i] > 0 }

// Agent returns a value copy, like the real accessor surface.
func (v *View) Agent(i int) int { return v.Agents[i] }

// Self is legal: methods on View itself are the accessor surface, the
// retention contract binds their callers.
func (v *View) Self() *View { return v }
