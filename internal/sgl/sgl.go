// Package sgl implements Algorithm SGL (§4 of the paper): Strong Global
// Learning for a team of k > 1 asynchronous agents in an unknown graph.
// Upon completion every agent outputs the set of labels of all
// participating agents and is aware the set is complete, which
// immediately solves team size, leader election, perfect renaming and
// gossiping at cost polynomial in the graph size and in the smallest
// label length (Theorem 4.1).
//
// Each agent starts as a traveller executing RV-asynch-poly with its own
// label and carries a bag: the set of labels (with attached gossip
// values) it has heard of, exchanged and unioned at every meeting.
//
//   - A traveller that meets someone whose bag holds a label smaller than
//     its own becomes a ghost: it finishes the current edge and parks
//     forever, a meetable information relay.
//   - Otherwise, if it meets a non-explorer, it becomes an explorer and
//     adopts the smallest-labelled non-explorer it met as its token (that
//     agent parks as a ghost). The explorer runs Procedure ESST against
//     its token (Phase 1), learning an upper bound E(n) on the graph
//     size; backtracks and resumes RV-asynch-poly (Phase 2) until it
//     either exhausts its budget or hears a smaller label; then (Phase 3)
//     either seeks its token and parks/adopts its output, or — if its own
//     label is still the smallest it knows — sweeps the graph with
//     R(E(n), s), collecting every parked agent's label, and sweeps again
//     broadcasting the now-complete bag.
//
// Faithfulness note (DESIGN.md §2.4): the paper's Phase 2 runs for
// Π(E(n), |L|) traversals, a bound so large it cannot be walked by any
// machine; Phase2Budget makes the horizon configurable. FaithfulBudget
// is the paper's; PracticalBudget is the simulation-scale default. The
// test suite verifies *outcomes* (exact output sets), so an inadequate
// budget manifests as a caught failure, never as a silently wrong claim.
package sgl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"

	"meetpoly/internal/costmodel"
	"meetpoly/internal/esst"
	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/rverr"
	"meetpoly/internal/sched"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

// State is an SGL agent's role.
type State uint8

// SGL states.
const (
	StateTraveller State = iota + 1
	StateExplorer
	StateGhost
)

func (s State) String() string {
	switch s {
	case StateTraveller:
		return "traveller"
	case StateExplorer:
		return "explorer"
	case StateGhost:
		return "ghost"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Payload is the information an SGL agent shares at a meeting: its
// pre-meeting snapshot, per the model's simultaneous exchange.
type Payload struct {
	Label labels.Label
	State State
	Bag   map[labels.Label]string
	// Final marks the bag as the complete set of all labels.
	Final     bool
	HasOutput bool
}

// Phase2Budget returns the number of RV-asynch-poly edge traversals an
// explorer performs in Phase 2 (counted from the very beginning of its
// execution), given the ESST-derived size bound e.
type Phase2Budget func(e int, l labels.Label) int

// PracticalBudget scales the Phase 2 horizon linearly with E(n):
// factor*(e+1) traversals. This is the simulation-scale substitute for
// the paper's Π bound; see the package comment.
func PracticalBudget(factor int) Phase2Budget {
	if factor < 1 {
		panic("sgl: PracticalBudget needs factor >= 1")
	}
	return func(e int, _ labels.Label) int { return factor * (e + 1) }
}

// FaithfulBudget is the paper's Phase 2 horizon Π(E(n), |L|), clamped to
// the integer range. No simulation completes it; it is provided for
// faithfulness and for cost-model queries.
func FaithfulBudget(cat uxs.Catalog) Phase2Budget {
	model := costmodel.New(func(k int) *big.Int {
		return big.NewInt(int64(cat.P(k)))
	})
	return func(e int, l labels.Label) int {
		pi := model.Pi(e, l.Len())
		if !pi.IsInt64() {
			return math.MaxInt
		}
		v := pi.Int64()
		if v > math.MaxInt32*int64(1)<<16 { // effectively unreachable
			return math.MaxInt
		}
		return int(v)
	}
}

// encounterRec is a queued meeting snapshot awaiting the traveller's
// decision rules.
type encounterRec struct {
	peers  []Payload
	inEdge bool
}

// agent is one SGL participant's program and state.
type agent struct {
	label labels.Label
	value string
	env   *trajectory.Env
	cat   uxs.Catalog

	phase2Budget Phase2Budget

	state     State
	bag       map[labels.Label]string
	final     bool
	hasOutput bool
	output    map[labels.Label]string

	rv      trajectory.Stepper
	rvCount int
	rvEntry int
	curDeg  int

	pending   []encounterRec
	meetEpoch int

	tokenAssigned  bool
	tokenLabel     labels.Label
	tokenSighted   bool // token met during the last move
	withToken      bool // co-located with token right now
	tokenHasOutput bool

	phase1Trace []esst.MoveRec
	failure     string

	finalState State // recorded at halt for reports

	// Direct-dispatch core state (agent.Step in step.go); the blocking
	// program in Run never touches these.
	ss         stepState
	mach       *esst.Machine
	eBound     int // ESST-derived size bound E(n)
	p2budget   int
	btIdx      int // backtrack index (phase-1 trace or sweep record)
	sweepSeq   []int
	sweepIdx   int
	sweepEntry int
	sweepRec   []esst.MoveRec
	lastExit   int
}

var _ sched.Agent = (*agent)(nil)

func newAgent(l labels.Label, value string, env *trajectory.Env, budget Phase2Budget) *agent {
	return &agent{
		label:        l,
		value:        value,
		env:          env,
		cat:          env.Catalog(),
		phase2Budget: budget,
		state:        StateTraveller,
		bag:          map[labels.Label]string{l: value},
		rv:           nil, // created lazily at wake (stepper is stateful)
	}
}

// Publish implements sched.Agent.
func (a *agent) Publish() any {
	bag := make(map[labels.Label]string, len(a.bag))
	for l, v := range a.bag {
		bag[l] = v
	}
	return Payload{
		Label:     a.label,
		State:     a.state,
		Bag:       bag,
		Final:     a.final,
		HasOutput: a.hasOutput,
	}
}

// OnMeet implements sched.Agent. It runs while the agent's goroutine is
// suspended: bags union immediately; travellers additionally queue the
// snapshot for their transition rules.
func (a *agent) OnMeet(e sched.Encounter) {
	a.meetEpoch++
	peers := make([]Payload, 0, len(e.Peers))
	for _, p := range e.Peers {
		pl, ok := p.Payload.(Payload)
		if !ok {
			continue
		}
		peers = append(peers, pl)
		if a.tokenAssigned && pl.Label == a.tokenLabel {
			a.tokenSighted = true
			if !e.InEdge {
				a.withToken = true
			}
			if pl.HasOutput {
				a.tokenHasOutput = true
			}
		}
		if pl.Final {
			a.final = true
		}
	}
	for _, pl := range peers {
		for l, v := range pl.Bag {
			if _, ok := a.bag[l]; !ok {
				a.bag[l] = v
			}
		}
	}
	if a.state == StateTraveller {
		a.pending = append(a.pending, encounterRec{peers: peers, inEdge: e.InEdge})
	}
	// A parked ghost outputs the moment it learns its bag is complete.
	if a.state == StateGhost && a.final && !a.hasOutput {
		a.setOutput()
	}
}

func (a *agent) setOutput() {
	a.hasOutput = true
	a.final = true
	a.output = make(map[labels.Label]string, len(a.bag))
	for l, v := range a.bag {
		a.output[l] = v
	}
}

func (a *agent) minBag() labels.Label {
	min := a.label
	for l := range a.bag {
		if l < min {
			min = l
		}
	}
	return min
}

// move performs one traversal, refreshing token flags.
func (a *agent) move(p *sched.Proc, port int) sched.Observation {
	a.tokenSighted = false
	a.withToken = false
	obs := p.Move(port)
	a.curDeg = obs.Degree
	return obs
}

// Run implements sched.Agent: the SGL state machine.
func (a *agent) Run(p *sched.Proc) {
	defer func() { a.finalState = a.state }()
	a.curDeg = p.Obs().Degree
	a.rv = a.newRV()
	p.Phase("sgl: traveller")
	a.runTraveller(p)
	if a.state == StateGhost {
		p.Phase("sgl: ghost")
		if a.final && !a.hasOutput {
			a.setOutput()
		}
		return // park forever; OnMeet keeps serving
	}
	// Explorer.
	p.Phase("sgl: explorer phase 1 (ESST)")
	e := a.phase1(p)
	p.Phase("sgl: explorer phase 2 (resume RV)")
	a.phase2(p, e)
	p.Phase("sgl: explorer phase 3 (seek/sweep)")
	a.phase3(p, e)
}

func (a *agent) newRV() trajectory.Stepper {
	// Import cycle note: the master RV schedule lives in package core;
	// sgl reimplements the same flattened loop to avoid core->sgl->core
	// cycles. The structure is pinned against core.Schedule by tests.
	bits := a.label.Modified()
	s := len(bits)
	k, i, phase := 1, 1, 0
	return trajectory.Chain(func(int) trajectory.Stepper {
		m := k
		if s < m {
			m = s
		}
		switch phase {
		case 0, 1:
			phase++
			if bits[i-1] == 1 {
				return a.env.B(2 * k)
			}
			return a.env.A(4 * k)
		default:
			phase = 0
			defer func() {
				i++
				if i > m {
					i = 1
					k++
				}
			}()
			if i < m {
				return a.env.K(k)
			}
			return a.env.Omega(k)
		}
	})
}

// runTraveller executes RV-asynch-poly until a transition fires.
func (a *agent) runTraveller(p *sched.Proc) {
	for {
		for len(a.pending) > 0 {
			enc := a.pending[0]
			a.pending = a.pending[1:]
			if a.decideTraveller(enc) {
				a.pending = nil
				return
			}
		}
		port, ok := a.rv.Next(a.curDeg, a.rvEntry)
		if !ok {
			a.failure = "traveller: RV schedule exhausted (impossible)"
			return
		}
		obs := a.move(p, port)
		a.rvCount++
		a.rvEntry = obs.Entry
	}
}

// decideTraveller applies the traveller transition rules of Algorithm
// SGL to one meeting snapshot; true when the agent changed state.
func (a *agent) decideTraveller(enc encounterRec) bool {
	// Rule 1: someone has heard of a smaller label -> ghost.
	for _, pl := range enc.peers {
		for l := range pl.Bag {
			if l < a.label {
				a.state = StateGhost
				return true
			}
		}
	}
	// Rule 2: a non-explorer present -> become explorer; the smallest
	// non-explorer becomes this explorer's token.
	var tok *Payload
	for idx := range enc.peers {
		pl := &enc.peers[idx]
		if pl.State != StateExplorer {
			if tok == nil || pl.Label < tok.Label {
				tok = pl
			}
		}
	}
	if tok != nil {
		a.state = StateExplorer
		a.tokenAssigned = true
		a.tokenLabel = tok.Label
		a.tokenHasOutput = tok.HasOutput
		a.withToken = !enc.inEdge
		a.tokenSighted = true
		return true
	}
	// Rule 3: explorers only, no smaller labels: stay traveller.
	return false
}

// phase1 runs Procedure ESST against the agent's token and returns the
// size bound E(n) = cost + 1.
func (a *agent) phase1(p *sched.Proc) int {
	pr := &esst.Procedure{
		Cat: a.cat,
		Hooks: esst.Hooks{
			Move: func(port int) (sched.Observation, bool) {
				obs := a.move(p, port)
				return obs, a.tokenSighted
			},
			Degree:    func() int { return a.curDeg },
			WithToken: func() bool { return a.withToken },
		},
	}
	pr.Run()
	a.phase1Trace = pr.Trace
	return pr.Cost + 1
}

// phase2 backtracks the Phase 1 walk and resumes RV-asynch-poly until
// the budget is exhausted or a smaller label is heard.
func (a *agent) phase2(p *sched.Proc, e int) {
	if a.minBag() < a.label {
		return // abort immediately; Phase 3 starts here
	}
	for t := len(a.phase1Trace) - 1; t >= 0; t-- {
		a.move(p, a.phase1Trace[t].Entry)
		if a.minBag() < a.label {
			return // abort as soon as at a node
		}
	}
	budget := a.phase2Budget(e, a.label)
	for a.rvCount < budget {
		port, ok := a.rv.Next(a.curDeg, a.rvEntry)
		if !ok {
			a.failure = "phase2: RV schedule exhausted (impossible)"
			return
		}
		obs := a.move(p, port)
		a.rvCount++
		a.rvEntry = obs.Entry
		if a.minBag() < a.label {
			return
		}
	}
}

// phase3 finishes the algorithm: seekers find their token and park or
// adopt its output; the minimum-label agent sweeps, completes its bag,
// and broadcasts it.
func (a *agent) phase3(p *sched.Proc, e int) {
	if a.minBag() < a.label {
		a.seekToken(p, e)
		return
	}
	// This agent believes it is m: sweep R(E(n), s) collecting every
	// parked agent, declare the bag complete, and sweep back
	// broadcasting. The extra bounce before backtracking re-triggers the
	// meeting with any ghost co-located at the sweep's far end: the
	// discrete contact-episode model only exchanges payloads when a
	// contact STARTS, whereas the paper's continuous agents can transmit
	// during an ongoing co-location.
	seq := a.cat.Seq(e)
	rec := make([]esst.MoveRec, 0, len(seq))
	entry := 0
	for _, x := range seq {
		port := (entry + x) % a.curDeg
		obs := a.move(p, port)
		rec = append(rec, esst.MoveRec{Exit: port, Entry: obs.Entry})
		entry = obs.Entry
	}
	a.final = true
	if len(rec) > 0 {
		last := rec[len(rec)-1]
		obs := a.move(p, last.Entry) // bounce out
		a.move(p, obs.Entry)         // and back, refreshing the contact
	}
	for t := len(rec) - 1; t >= 0; t-- {
		a.move(p, rec[t].Entry)
	}
	a.setOutput()
}

// seekToken walks R(E(n), s) until it meets its token, then parks (or
// adopts the token's output if the token has already finished).
func (a *agent) seekToken(p *sched.Proc, e int) {
	if !a.withToken {
		seq := a.cat.Seq(e)
		entry := 0
		found := false
		for _, x := range seq {
			port := (entry + x) % a.curDeg
			obs := a.move(p, port)
			entry = obs.Entry
			if a.tokenSighted {
				found = true
				break
			}
		}
		if !found {
			a.failure = "phase3: token not found during R(E(n)) sweep"
			return
		}
	}
	if a.tokenHasOutput {
		a.setOutput()
		return
	}
	a.state = StateGhost
	if a.final && !a.hasOutput {
		a.setOutput()
	}
}

// AgentReport is one agent's outcome.
type AgentReport struct {
	Label      labels.Label
	State      State
	HasOutput  bool
	Output     []labels.Label          // sorted label set, nil if no output
	Values     map[labels.Label]string // gossip values attached to Output
	TeamSize   int
	Leader     labels.Label
	NewName    int // 1-based rank of Label within Output (perfect renaming)
	Traversals int
	Failure    string
}

// Result is the outcome of an SGL run.
type Result struct {
	Agents    []AgentReport
	AllOutput bool
	TotalCost int
	Summary   sched.Summary
}

// Config describes an SGL instance.
type Config struct {
	Graph  *graph.Graph
	Starts []int
	Labels []labels.Label
	// Values are the gossip inputs; defaults to "value-of-<label>".
	Values []string
	Env    *trajectory.Env
	// Adversary defaults to round-robin.
	Adversary sched.Adversary
	// InitiallyAwake defaults to all agents (the adversary still orders
	// every half-step). Dormant agents wake when visited.
	InitiallyAwake []int
	MaxSteps       int
	// Phase2Budget defaults to PracticalBudget(3).
	Phase2Budget Phase2Budget
	// Context, if non-nil, aborts the run between scheduler events when
	// canceled (reported in Result.Summary.Canceled).
	Context context.Context
	// Observer, if non-nil, receives execution events, including each
	// agent's state and phase transitions.
	Observer sched.Observer
	// ForceBlocking runs the agents on the scheduler's goroutine core
	// instead of the direct-dispatch fast path (sched.Config).
	ForceBlocking bool
}

// Run executes Algorithm SGL and reports every agent's outcome.
func Run(cfg Config) (*Result, error) {
	k := len(cfg.Labels)
	if k < 2 {
		return nil, fmt.Errorf("sgl: SGL requires at least 2 agents (k > 1): %w", rverr.ErrInvalidScenario)
	}
	if len(cfg.Starts) != k {
		return nil, fmt.Errorf("sgl: %d starts for %d labels: %w", len(cfg.Starts), k, rverr.ErrInvalidScenario)
	}
	seen := make(map[labels.Label]bool, k)
	for _, l := range cfg.Labels {
		if l == 0 {
			return nil, fmt.Errorf("sgl: labels must be positive: %w", rverr.ErrInvalidScenario)
		}
		if seen[l] {
			return nil, fmt.Errorf("sgl: duplicate label %d: %w", l, rverr.ErrInvalidScenario)
		}
		seen[l] = true
	}
	if cfg.Env == nil {
		return nil, fmt.Errorf("sgl: nil Env: %w", rverr.ErrInvalidScenario)
	}
	budget := cfg.Phase2Budget
	if budget == nil {
		budget = PracticalBudget(3)
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = &sched.RoundRobin{}
	}
	values := cfg.Values
	if values == nil {
		values = make([]string, k)
		for i, l := range cfg.Labels {
			values[i] = fmt.Sprintf("value-of-%d", l)
		}
	}
	if len(values) != k {
		return nil, fmt.Errorf("sgl: %d values for %d labels: %w", len(values), k, rverr.ErrInvalidScenario)
	}

	agents := make([]*agent, k)
	schedAgents := make([]sched.Agent, k)
	for i := range agents {
		agents[i] = newAgent(cfg.Labels[i], values[i], cfg.Env, budget)
		schedAgents[i] = agents[i]
	}
	awake := cfg.InitiallyAwake
	if awake == nil {
		awake = make([]int, k)
		for i := range awake {
			awake[i] = i
		}
	}
	r, err := sched.NewRunner(sched.Config{
		Graph:          cfg.Graph,
		Starts:         cfg.Starts,
		Agents:         schedAgents,
		InitiallyAwake: awake,
		MaxSteps:       cfg.MaxSteps,
		StopWhen: func(*sched.Runner) bool {
			for _, a := range agents {
				if !a.hasOutput {
					return false
				}
			}
			return true
		},
		Context:       cfg.Context,
		Observer:      cfg.Observer,
		ForceBlocking: cfg.ForceBlocking,
	}, adv)
	if err != nil {
		return nil, fmt.Errorf("sgl: %w", err)
	}
	defer r.Close()
	sum := r.Run()

	res := &Result{Summary: sum, TotalCost: sum.TotalCost, AllOutput: true}
	for i, a := range agents {
		rep := AgentReport{
			Label:      a.label,
			State:      a.state,
			HasOutput:  a.hasOutput,
			Traversals: sum.Traversals[i],
			Failure:    a.failure,
		}
		if a.hasOutput {
			rep.Values = a.output
			for l := range a.output {
				rep.Output = append(rep.Output, l)
			}
			sort.Slice(rep.Output, func(x, y int) bool { return rep.Output[x] < rep.Output[y] })
			rep.TeamSize = len(rep.Output)
			rep.Leader = rep.Output[0]
			for rank, l := range rep.Output {
				if l == a.label {
					rep.NewName = rank + 1
				}
			}
		} else {
			res.AllOutput = false
		}
		res.Agents = append(res.Agents, rep)
	}
	return res, nil
}

// TeamSize solves the team size problem: every agent's count of
// participating agents. It returns the (unanimous) count.
func TeamSize(cfg Config) (int, error) {
	res, err := runComplete(cfg)
	if err != nil {
		return 0, err
	}
	return res.Agents[0].TeamSize, nil
}

// LeaderElection returns the unanimously elected leader (the smallest
// label).
func LeaderElection(cfg Config) (labels.Label, error) {
	res, err := runComplete(cfg)
	if err != nil {
		return 0, err
	}
	return res.Agents[0].Leader, nil
}

// PerfectRenaming returns the new name (in {1..k}) adopted by each agent,
// indexed as cfg.Labels.
func PerfectRenaming(cfg Config) ([]int, error) {
	res, err := runComplete(cfg)
	if err != nil {
		return nil, err
	}
	names := make([]int, len(res.Agents))
	for i, a := range res.Agents {
		names[i] = a.NewName
	}
	return names, nil
}

// Gossip returns every agent's view of all initial values, keyed by
// label, indexed as cfg.Labels.
func Gossip(cfg Config) ([]map[labels.Label]string, error) {
	res, err := runComplete(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]map[labels.Label]string, len(res.Agents))
	for i, a := range res.Agents {
		out[i] = a.Values
	}
	return out, nil
}

// runComplete runs SGL and errors unless every agent produced an output
// and all outputs agree.
func runComplete(cfg Config) (*Result, error) {
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	if !res.AllOutput {
		return nil, fmt.Errorf("sgl: not all agents output within %d steps", cfg.MaxSteps)
	}
	first := res.Agents[0].Output
	for _, a := range res.Agents[1:] {
		if len(a.Output) != len(first) {
			return nil, errors.New("sgl: agents disagree on the label set")
		}
		for i := range first {
			if a.Output[i] != first[i] {
				return nil, errors.New("sgl: agents disagree on the label set")
			}
		}
	}
	return res, nil
}
