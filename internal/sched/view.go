package sched

import "meetpoly/internal/graph"

// AgentView is the adversary's omniscient snapshot of one agent. The
// adversary, unlike agents, sees everything — that is exactly what makes
// it an adversary.
type AgentView struct {
	Status      Status
	Pos         Position
	HasPending  bool
	PendingPort int
	Traversals  int
}

// View is the adversary's window onto the execution. It reads the
// runner's live agent state directly — materializing a snapshot per
// adversary event was the single largest line item of the half-step
// cost — so strategies may query it freely during Next but must not
// retain it, or AgentView values derived from it, across calls. Copy
// what you need to keep.
type View struct {
	Steps int

	// The view binds directly to whichever core owns the execution — the
	// single-cell Runner or one lane of a BatchRunner — through the graph,
	// a pointer to that execution's dormant counter, and an alias of its
	// agent pointers. Binding to the pieces rather than to the Runner is
	// what lets a BatchRunner hand each lane's adversary its own View over
	// a slice of the shared dense state.
	g       *graph.Graph
	dormant *int
	// agents aliases the execution's agent pointers: the per-event
	// accessors (CanAdvance in every adversary's inner loop) save one
	// pointer chase per call.
	agents []*agentState
}

// view refreshes and hands out the runner's single reused View buffer.
//
//rvlint:hotpath
func (r *Runner) view() *View {
	r.viewBuf.Steps = r.steps
	return &r.viewBuf
}

// K returns the number of agents in the simulation.
func (v *View) K() int { return len(v.agents) }

// Agent returns the omniscient snapshot of agent i.
func (v *View) Agent(i int) AgentView {
	st := v.agents[i]
	return AgentView{
		Status:      st.status,
		Pos:         st.pos,
		HasPending:  st.hasPending,
		PendingPort: st.pendingPort,
		Traversals:  st.traversals,
	}
}

// Graph exposes the topology to adversary strategies.
func (v *View) Graph() *graph.Graph { return v.g }

// AnyDormant reports whether any agent is still dormant, backed by a
// scheduler-maintained counter: adversaries gate their wake scans on it
// so the steady state (everyone awake) pays one integer read per event.
func (v *View) AnyDormant() bool { return *v.dormant > 0 }

// CanWake reports whether agent i is dormant.
func (v *View) CanWake(i int) bool {
	return i >= 0 && i < len(v.agents) && v.agents[i].status == StatusDormant
}

// CanAdvance reports whether agent i has a committed move to advance.
func (v *View) CanAdvance(i int) bool {
	if i < 0 || i >= len(v.agents) {
		return false
	}
	st := v.agents[i]
	return st.status == StatusActive && st.hasPending
}

// AdvanceCreatesContact predicts whether advancing agent i one half-step
// would put it in contact with some other agent: entering an edge that an
// opposite-direction agent currently occupies, or arriving at a node that
// any agent currently occupies. This is the one-step lookahead avoider
// strategies use.
func (v *View) AdvanceCreatesContact(i int) bool {
	return v.CanAdvance(i) && v.advanceContact(i)
}

// advanceContact is AdvanceCreatesContact without the CanAdvance
// precondition re-check, for callers that just established it.
func (v *View) advanceContact(i int) bool {
	a := v.agents[i]
	if a.pos.Kind == AtNode {
		from := a.pos.Node
		to, _ := v.g.Succ(from, a.pendingPort)
		for j, b := range v.agents {
			if j == i {
				continue
			}
			if b.pos.Kind == InEdge && b.pos.From == to && b.pos.To == from {
				return true
			}
		}
		return false
	}
	dest := a.pos.To
	for j, b := range v.agents {
		if j == i {
			continue
		}
		if b.pos.Kind == AtNode && b.pos.Node == dest {
			return true
		}
	}
	return false
}
