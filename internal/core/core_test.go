package core

import (
	"math/big"
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/sched"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

func testEnv(t testing.TB) *trajectory.Env {
	t.Helper()
	return trajectory.NewEnv(uxs.NewVerified(uxs.DefaultFamily(6), 1))
}

func TestScheduleMatchesPseudocode(t *testing.T) {
	// Label 1: M(1) = 1101, s = 4. Piece k=1 processes only bit 1 (a B
	// segment) and ends with the fence Ω(1); piece k=2 processes bits
	// 1,2 with one border; etc.
	sch := Schedule(1, 3)
	want := []Component{
		{CompAtomB, 1, 1, 2}, {CompAtomB, 1, 1, 2}, {CompOmega, 1, 1, 1},
		{CompAtomB, 2, 1, 4}, {CompAtomB, 2, 1, 4}, {CompK, 2, 1, 2},
		{CompAtomB, 2, 2, 4}, {CompAtomB, 2, 2, 4}, {CompOmega, 2, 2, 2},
		{CompAtomB, 3, 1, 6}, {CompAtomB, 3, 1, 6}, {CompK, 3, 1, 3},
		{CompAtomB, 3, 2, 6}, {CompAtomB, 3, 2, 6}, {CompK, 3, 2, 3},
		{CompAtomA, 3, 3, 12}, {CompAtomA, 3, 3, 12}, {CompOmega, 3, 3, 3},
	}
	if len(sch) != len(want) {
		t.Fatalf("schedule length %d, want %d\n%v", len(sch), len(want), sch)
	}
	for i := range want {
		if sch[i] != want[i] {
			t.Fatalf("component %d = %+v, want %+v", i, sch[i], want[i])
		}
	}
}

func TestScheduleBitDriven(t *testing.T) {
	// M(2) = 110001: bits 1,2 are 1,1; bits 3,4 are 0,0; bit 5 is 0; bit 6 is 1.
	sch := Schedule(2, 6)
	byPiece := make(map[int][]Component)
	for _, c := range sch {
		byPiece[c.K] = append(byPiece[c.K], c)
	}
	// Piece 6 processes all 6 bits: kinds must follow M(2) = 1 1 0 0 0 1.
	wantKinds := []ComponentKind{CompAtomB, CompAtomB, CompAtomA, CompAtomA, CompAtomA, CompAtomB}
	var segKinds []ComponentKind
	for _, c := range byPiece[6] {
		if c.Kind == CompAtomA || c.Kind == CompAtomB {
			if len(segKinds) == 0 || c.I != len(segKinds) {
				segKinds = append(segKinds, c.Kind)
			}
		}
	}
	if len(segKinds) != 6 {
		t.Fatalf("piece 6 has %d segments, want 6", len(segKinds))
	}
	for i, k := range wantKinds {
		if segKinds[i] != k {
			t.Errorf("piece 6 segment %d kind %s, want %s", i+1, segKinds[i], k)
		}
	}
	// Borders: 5 borders and 1 fence in piece 6.
	borders, fences := 0, 0
	for _, c := range byPiece[6] {
		switch c.Kind {
		case CompK:
			borders++
		case CompOmega:
			fences++
		}
	}
	if borders != 5 || fences != 1 {
		t.Errorf("piece 6: %d borders, %d fences; want 5, 1", borders, fences)
	}
}

// TestStepperPrefixMatchesSchedule runs the lazy master stepper and the
// explicit schedule side by side through the first piece.
func TestStepperPrefixMatchesSchedule(t *testing.T) {
	env := testEnv(t)
	g := graph.Ring(4)
	l := labels.Label(3)

	// Explicit: execute the first two components (atoms of piece 1).
	var explicit []int
	for _, c := range Schedule(l, 1)[:2] {
		var s trajectory.Stepper
		switch c.Kind {
		case CompAtomB:
			s = env.B(c.Arg)
		case CompAtomA:
			s = env.A(c.Arg)
		}
		tr, done := trajectory.Run(g, 0, s, 2_000_000)
		if !done {
			t.Skip("atom too long for explicit comparison under this catalog")
		}
		explicit = append(explicit, tr.Nodes...)
	}
	master, _ := trajectory.Run(g, 0, NewStepper(l, env), len(explicit))
	for i := range explicit {
		if master.Nodes[i] != explicit[i] {
			t.Fatalf("master diverges from schedule at move %d", i)
		}
	}
}

func TestRendezvousAcrossGraphsAndAdversaries(t *testing.T) {
	env := testEnv(t)
	// Oriented rings from rotation-equivalent starts are excluded here:
	// the two walks are exact translates until the first differing label
	// bit's piece, which the exact trajectory definitions place ~1e11
	// traversals out (see TestOrientedRingSymmetryDodges). Port-shuffled
	// rings break the translation symmetry and meet quickly.
	cases := []struct {
		g      *graph.Graph
		s1, s2 int
		l1, l2 labels.Label
	}{
		{graph.Path(2), 0, 1, 1, 2},
		{graph.Path(4), 0, 3, 2, 5},
		{graph.ShufflePorts(graph.Ring(4), 4), 0, 2, 1, 3},
		{graph.ShufflePorts(graph.Ring(5), 5), 1, 4, 7, 4},
		{graph.Star(4), 1, 3, 2, 3},
		{graph.Complete(4), 0, 3, 9, 6},
		{graph.BinaryTree(5), 0, 4, 1, 6},
	}
	strategies := map[string]func() sched.Adversary{
		"round-robin": func() sched.Adversary { return &sched.RoundRobin{} },
		"biased":      func() sched.Adversary { return &sched.Biased{Weights: []int{1, 7}} },
		"late-wake":   func() sched.Adversary { return &sched.LateWake{Primary: 0, Hold: 300} },
		"random":      func() sched.Adversary { return sched.NewRandom(3) },
	}
	for _, tc := range cases {
		for name, mk := range strategies {
			res, err := Rendezvous(tc.g, tc.s1, tc.s2, tc.l1, tc.l2, env, mk(), 3_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Met {
				t.Errorf("%s on %s (labels %d,%d): no meeting within budget",
					name, tc.g, tc.l1, tc.l2)
				continue
			}
			// Measured cost must respect the Theorem 3.1 guarantee.
			cost := big.NewInt(int64(res.Meeting.Cost))
			if cost.Cmp(res.Bound) > 0 {
				t.Errorf("%s on %s: cost %v exceeds bound %v", name, tc.g, cost, res.Bound)
			}
		}
	}
}

func TestRendezvousRejectsEqualLabels(t *testing.T) {
	env := testEnv(t)
	if _, err := Rendezvous(graph.Path(2), 0, 1, 5, 5, env, &sched.RoundRobin{}, 10); err == nil {
		t.Error("equal labels accepted")
	}
}

// bfsPath returns a shortest node path from u to v.
func bfsPath(g *graph.Graph, u, v int) []int {
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	parent[u] = u
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for p := 0; p < g.Degree(x); p++ {
			to, _ := g.Succ(x, p)
			if parent[to] == -1 {
				parent[to] = x
				queue = append(queue, to)
			}
		}
	}
	var rev []int
	for x := v; x != u; x = parent[x] {
		rev = append(rev, x)
	}
	rev = append(rev, u)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// TestLemma31Forced verifies Lemma 3.1 exactly with the cyclic
// certifier: if agent b keeps repeating the closed trajectory X(m, v)
// while agent a — approaching from anywhere — follows one entire copy of
// the same X(m, v), the meeting is forced under EVERY schedule. Both
// agents traverse the same embedded path, so the paper's
// parameter-crossing argument applies; b's endless repetition leaves the
// adversary no route frontier to hide behind.
func TestLemma31Forced(t *testing.T) {
	env := testEnv(t)
	for _, g := range []*graph.Graph{graph.Ring(4), graph.Path(4), graph.Star(4), graph.Complete(4)} {
		m := g.N()
		lenX := int(env.LenX(m).Int64())
		v := g.N() - 1 // b's anchor
		tb, _ := trajectory.Run(g, v, env.X(m), lenX)
		cycleB := append([]int{v}, tb.Nodes...)
		for startA := 0; startA < g.N()-1; startA++ {
			// a walks to the anchor, then follows the same loop once.
			routeA := bfsPath(g, startA, v)
			routeA = append(routeA, tb.Nodes...)
			res, err := sched.CertifyCyclic(routeA, cycleB)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Forced {
				t.Errorf("%s: Lemma 3.1 not forced from start %d (anchor %d, m=%d)",
					g, startA, v, m)
			}
		}
	}
}

// TestLemma31NeedsIntegrality is the contrapositive: with m too small
// for the graph (X(m) not integral), the lemma's conclusion can fail —
// exercised on a ring where a short X cannot span the cycle.
func TestLemma31NeedsIntegrality(t *testing.T) {
	env := testEnv(t)
	g := graph.Ring(6)
	m := 1 // far below n: X(1) is a 2-move bounce
	lenX := int(env.LenX(m).Int64())
	ta, _ := trajectory.Run(g, 0, env.X(m), lenX)
	tb, _ := trajectory.Run(g, 3, env.X(m), lenX)
	routeA := append([]int{0}, ta.Nodes...)
	cycleB := append([]int{3}, tb.Nodes...)
	res, err := sched.CertifyCyclic(routeA, cycleB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forced {
		t.Error("X(1) on a 6-ring from distance 3 cannot force a meeting")
	}
}

// TestOrientedRingSymmetryDodges documents the measured symmetry
// phenomenon: on an oriented ring with rotation-equivalent starts, both
// agents' schedules share the piece-1 prefix (every modified label starts
// 11), the walks are exact rotations of one another, and no online
// adversary run within a realistic budget produces a meeting. The paper's
// guarantee is untouched — it kicks in at the first differing bit — but
// the exact trajectory definitions place that ~1e11 traversals out even
// for n = 4 (see the cost tables of experiment E3).
func TestOrientedRingSymmetryDodges(t *testing.T) {
	env := testEnv(t)
	res, err := Rendezvous(graph.Ring(4), 0, 2, 1, 3, env, &sched.RoundRobin{}, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatalf("unexpected early meeting at cost %d; symmetry analysis wrong", res.Meeting.Cost)
	}
	// The first atom alone exceeds any feasible budget.
	atom := env.LenB(2)
	if atom.Cmp(big.NewInt(1_000_000)) <= 0 {
		t.Errorf("|B(2)| = %v unexpectedly small; symmetry rationale needs revisiting", atom)
	}
}

// TestCertifiedWorstCase certifies forced meetings on whole-algorithm
// route prefixes (experiment E6) and checks that measured costs under
// online adversaries never exceed the certified worst case.
func TestCertifiedWorstCase(t *testing.T) {
	env := testEnv(t)
	type inst struct {
		g      *graph.Graph
		s1, s2 int
		l1, l2 labels.Label
	}
	instances := []inst{
		{graph.Path(2), 0, 1, 1, 2},
		{graph.Path(3), 0, 2, 1, 2},
		{graph.ShufflePorts(graph.Ring(4), 4), 0, 2, 1, 3},
		{graph.Star(4), 1, 2, 2, 3},
	}
	prefix := 4000
	forced := 0
	for _, in := range instances {
		res, err := CertifyInstance(in.g, in.s1, in.s2, in.l1, in.l2, env, prefix)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Forced {
			t.Logf("%s: escape within %d-move prefixes (worst case lies deeper)", in.g, prefix)
			continue
		}
		forced++
		for name, mk := range map[string]func() sched.Adversary{
			"round-robin": func() sched.Adversary { return &sched.RoundRobin{} },
			"avoider":     func() sched.Adversary { return &sched.Avoider{} },
		} {
			r, err := Rendezvous(in.g, in.s1, in.s2, in.l1, in.l2, env, mk(), 10*prefix)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Met {
				t.Errorf("%s/%s: certified forced but adversary escaped", in.g, name)
				continue
			}
			if r.Meeting.Cost > res.WorstCompleted {
				t.Errorf("%s/%s: measured cost %d > certified worst %d",
					in.g, name, r.Meeting.Cost, res.WorstCompleted)
			}
		}
	}
	if forced == 0 {
		t.Error("no instance was certified forced; prefix too short for E6")
	}
}

func TestPiBoundUsesShorterLabel(t *testing.T) {
	env := testEnv(t)
	b1 := PiBound(env, 4, 1, 1023)   // min length 1
	b2 := PiBound(env, 4, 1023, 1)   // symmetric
	b3 := PiBound(env, 4, 1023, 513) // min length 10
	if b1.Cmp(b2) != 0 {
		t.Error("PiBound not symmetric in labels")
	}
	if b1.Cmp(b3) >= 0 {
		t.Error("PiBound should grow with the shorter label's length")
	}
}

func TestRouteDeterministic(t *testing.T) {
	env := testEnv(t)
	g := graph.Ring(5)
	a := Route(g, 0, 5, env, 500)
	b := Route(g, 0, 5, env, 500)
	if len(a) != len(b) {
		t.Fatal("route lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("routes diverge")
		}
	}
	if a[0] != 0 || len(a) != 501 {
		t.Errorf("route shape wrong: start %d len %d", a[0], len(a))
	}
}
