// Package logx is the repo's leveled structured logger: logfmt-style
// lines (ts, level, msg, then key=value fields) written atomically to
// one writer, with a level threshold and bound fields for per-request
// context (tenant, shard, lease). It replaces the ad-hoc
// fmt.Fprintln(os.Stderr, …) logging in rvserved, rvcoord and rvsweep.
//
// A nil *Logger is valid and silently discards everything, so library
// code logs unconditionally and lets the caller decide whether a
// logger exists at all.
package logx

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level is a log severity threshold.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "unknown"
}

// ParseLevel maps a -log-level flag value to a Level; it accepts the
// four level names case-insensitively.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("logx: unknown level %q (want debug|info|warn|error)", s)
}

// Field is one key=value pair on a log line.
type Field struct {
	Key   string
	Value any
}

// F builds a Field; it exists so call sites stay short:
//
//	log.Info("lease granted", logx.F("worker", name), logx.F("cells", n))
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Logger writes leveled logfmt lines. Methods on a nil receiver are
// no-ops; a non-nil Logger is safe for concurrent use (each line is
// built off-lock and written under one mutex, so lines never
// interleave).
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	min   Level
	bound string // pre-rendered " k=v …" suffix from With
	clock func() time.Time
}

// New returns a Logger writing lines at or above min to w.
func New(w io.Writer, min Level) *Logger {
	return &Logger{mu: new(sync.Mutex), w: w, min: min, clock: time.Now}
}

// WithClock returns a copy of l reading timestamps from clock; it
// exists so tests can pin golden lines. Nil-safe.
func (l *Logger) WithClock(clock func() time.Time) *Logger {
	if l == nil {
		return nil
	}
	c := *l
	c.clock = clock
	return &c
}

// With returns a child logger whose lines carry the given fields after
// the message and before per-call fields — request-scoped context like
// tenant or lease IDs is bound once, not repeated at call sites.
// Nil-safe.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil || len(fields) == 0 {
		return l
	}
	var b strings.Builder
	b.WriteString(l.bound)
	appendFields(&b, fields)
	c := *l
	c.bound = b.String()
	return &c
}

// Enabled reports whether lines at lv would be written. Nil-safe.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.min }

func (l *Logger) log(lv Level, msg string, fields []Field) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.clock().UTC().Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	b.WriteString(quote(msg))
	b.WriteString(l.bound)
	appendFields(&b, fields)
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String()) //nolint:errcheck // logging is best-effort
	l.mu.Unlock()
}

// Debug logs at debug level. Nil-safe.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info logs at info level. Nil-safe.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn logs at warn level. Nil-safe.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error logs at error level. Nil-safe.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

func appendFields(b *strings.Builder, fields []Field) {
	for _, f := range fields {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		b.WriteString(renderValue(f.Value))
	}
}

// renderValue formats a field value, quoting strings only when they
// contain logfmt-hostile characters so common values stay grep-able.
func renderValue(v any) string {
	switch x := v.(type) {
	case string:
		return quote(x)
	case error:
		if x == nil {
			return "<nil>"
		}
		return quote(x.Error())
	case fmt.Stringer:
		return quote(x.String())
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case bool:
		return strconv.FormatBool(x)
	case time.Duration:
		return x.String()
	default:
		return quote(fmt.Sprint(x))
	}
}

// quote wraps s in strconv quoting only when needed.
func quote(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
